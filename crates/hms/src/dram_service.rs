//! Per-node user-level DRAM space service.
//!
//! "Each node runs an instance of such service. The service coordinates the
//! DRAM allocation from multiple MPI processes on the same node" (§3.3).
//! The coordination is a **static equal split**: each of a node's rank
//! slots owns `dram_per_node / ranks_per_node` of the node allowance,
//! served by its own [`SpaceAllocator`]. Requests never block — a rank
//! that cannot get space keeps its object in NVM, exactly as the
//! runtime's knapsack assumes (the knapsack's capacity input *is* this
//! per-rank share, so planner and service agree by construction).
//!
//! Why not one first-fit pool per node? Determinism. Rank threads run
//! concurrently in host time; a shared free list would make allocation
//! success depend on which thread the OS ran first — fragmentation from
//! one rank's alloc/free interleaving can fail a neighbor's reservation
//! on one run and admit it on the next, leaking host scheduling into the
//! virtual clock (observed as per-run migration-count jitter the moment
//! multi-rank nodes were exercised). The static split keeps every rank's
//! allocation history a pure function of its own program order. Region
//! offsets are rebased per (node, slot), so regions across a node remain
//! pairwise disjoint addresses.

use crate::alloc::{Region, SpaceAllocator};
use parking_lot::Mutex;
use std::sync::Arc;
use unimem_sim::Bytes;

/// Shared handle to the DRAM services of every node in the job.
#[derive(Debug, Clone)]
pub struct DramService {
    /// One allocator per rank (its slot's share of its node's allowance).
    slots: Arc<Vec<Mutex<SpaceAllocator>>>,
    ranks_per_node: usize,
    /// Per-rank share: `dram_per_node / ranks_per_node`.
    per_rank: Bytes,
    /// The node allowance the shares partition.
    node_capacity: Bytes,
    n_nodes: usize,
}

impl DramService {
    /// One allocator per rank; `ranks` total MPI ranks with `ranks_per_node`
    /// packed per node (the last node may be partially filled). Each rank
    /// owns an equal static share of its node's `dram_per_node`.
    pub fn new(ranks: usize, ranks_per_node: usize, dram_per_node: Bytes) -> DramService {
        assert!(ranks >= 1 && ranks_per_node >= 1);
        let per_rank = Bytes(dram_per_node.get() / ranks_per_node as u64);
        DramService {
            slots: Arc::new(
                (0..ranks)
                    .map(|_| Mutex::new(SpaceAllocator::new(per_rank)))
                    .collect(),
            ),
            ranks_per_node,
            per_rank,
            node_capacity: dram_per_node,
            n_nodes: ranks.div_ceil(ranks_per_node),
        }
    }

    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// Base address of `rank`'s slot within the job's DRAM address space
    /// (regions from different slots never overlap).
    fn base(&self, rank: usize) -> u64 {
        self.node_of(rank) as u64 * self.node_capacity.get()
            + (rank % self.ranks_per_node) as u64 * self.per_rank.get()
    }

    /// Try to reserve `size` bytes of DRAM for `rank` from its static
    /// share. Non-blocking.
    pub fn reserve(&self, rank: usize, size: Bytes) -> Option<Region> {
        let mut region = self.slots[rank].lock().alloc(size)?;
        region.offset += self.base(rank);
        Some(region)
    }

    /// Return a region previously granted to `rank`.
    pub fn release(&self, rank: usize, mut region: Region) {
        region.offset -= self.base(rank);
        self.slots[rank].lock().free(region);
    }

    /// Free DRAM in `rank`'s share right now.
    pub fn available(&self, rank: usize) -> Bytes {
        self.slots[rank].lock().available()
    }

    /// Largest single allocatable run in `rank`'s share.
    pub fn largest_run(&self, rank: usize) -> Bytes {
        self.slots[rank].lock().largest_free_run()
    }

    /// Per-node DRAM capacity (the allowance the rank shares partition).
    pub fn capacity(&self) -> Bytes {
        self.node_capacity
    }

    /// One rank's static share of the node allowance.
    pub fn per_rank_share(&self) -> Bytes {
        self.per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_map_to_nodes() {
        let s = DramService::new(8, 4, Bytes::mib(256));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(3), 0);
        assert_eq!(s.node_of(4), 1);
        assert_eq!(s.node_of(7), 1);
    }

    #[test]
    fn uneven_last_node() {
        let s = DramService::new(5, 4, Bytes::mib(1));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(4), 1);
    }

    #[test]
    fn node_allowance_splits_statically_per_rank() {
        let s = DramService::new(2, 2, Bytes(100));
        assert_eq!(s.per_rank_share(), Bytes(50));
        // A rank cannot exceed its share even while the neighbor is idle:
        // the planner's capacity input is the share, and borrowing would
        // make admission depend on host scheduling.
        assert!(s.reserve(0, Bytes(80)).is_none());
        let r = s.reserve(0, Bytes(50)).unwrap();
        // The neighbor's share is untouched either way.
        assert_eq!(s.available(1), Bytes(50));
        assert!(s.reserve(1, Bytes(40)).is_some());
        s.release(0, r);
        assert_eq!(s.available(0), Bytes(50));
    }

    #[test]
    fn colocated_regions_never_alias() {
        let s = DramService::new(4, 2, Bytes(100));
        // Ranks 0/1 share node 0, ranks 2/3 node 1; same-shaped
        // reservations must land on pairwise disjoint addresses.
        let regions: Vec<Region> = (0..4).map(|r| s.reserve(r, Bytes(30)).unwrap()).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(
                    a.offset + a.len <= b.offset || b.offset + b.len <= a.offset,
                    "overlap: {a:?} vs {b:?}"
                );
            }
        }
        // Release round-trips through the rebasing.
        for (r, region) in regions.into_iter().enumerate() {
            s.release(r, region);
            assert_eq!(s.available(r), Bytes(50));
        }
    }

    #[test]
    fn ranks_on_different_nodes_are_independent() {
        let s = DramService::new(2, 1, Bytes(100));
        let _ = s.reserve(0, Bytes(100)).unwrap();
        assert!(s.reserve(1, Bytes(100)).is_some());
    }

    #[test]
    fn reservations_are_order_independent_across_ranks() {
        // The allocation outcome for one rank is a pure function of its
        // own request history — co-located activity cannot change it.
        let solo = DramService::new(2, 2, Bytes(1000));
        let busy = DramService::new(2, 2, Bytes(1000));
        for _ in 0..30 {
            let _ = busy.reserve(1, Bytes(17));
        }
        for i in 0..20 {
            let a = solo.reserve(0, Bytes(7 * (i % 3) + 1));
            let b = busy.reserve(0, Bytes(7 * (i % 3) + 1));
            assert_eq!(a.map(|r| r.len), b.map(|r| r.len));
        }
        assert_eq!(solo.available(0), busy.available(0));
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let s = DramService::new(4, 4, Bytes(1000));
        let grants: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|rank| {
                    let s = s.clone();
                    scope.spawn(move || {
                        (0..50)
                            .filter_map(|_| s.reserve(rank, Bytes(7)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let total: u64 = grants.iter().flatten().map(|r| r.len).sum();
        assert!(total <= 1000, "overcommitted: {total}");
        // Regions must be pairwise disjoint.
        let mut all: Vec<_> = grants.into_iter().flatten().collect();
        all.sort_by_key(|r| r.offset);
        for w in all.windows(2) {
            assert!(w[0].offset + w[0].len <= w[1].offset, "overlap: {w:?}");
        }
    }
}
