//! Per-node user-level DRAM space service.
//!
//! "Each node runs an instance of such service. The service coordinates the
//! DRAM allocation from multiple MPI processes on the same node" (§3.3).
//! The coordination is a **static equal split**: each of a node's rank
//! slots owns `node_dram / slots` of that node's allowance, served by its
//! own [`SpaceAllocator`]. Requests never block — a rank that cannot get
//! space keeps its object in NVM, exactly as the runtime's knapsack
//! assumes (the knapsack's capacity input *is* this per-rank share, so
//! planner and service agree by construction). Nodes may be
//! heterogeneous: [`DramService::from_nodes`] takes each node's DRAM
//! allowance and slot count from its spec in the [`ClusterTopology`], so
//! ranks on a big-memory node get bigger shares than ranks on a small
//! one.
//!
//! Why not one first-fit pool per node? Determinism. Rank threads run
//! concurrently in host time; a shared free list would make allocation
//! success depend on which thread the OS ran first — fragmentation from
//! one rank's alloc/free interleaving can fail a neighbor's reservation
//! on one run and admit it on the next, leaking host scheduling into the
//! virtual clock (observed as per-run migration-count jitter the moment
//! multi-rank nodes were exercised). The static split keeps every rank's
//! allocation history a pure function of its own program order. Region
//! offsets are rebased per (node, slot) with node bases laid out by
//! prefix sums of node capacities, so regions across the whole job
//! remain pairwise disjoint addresses.

use crate::alloc::{Region, SpaceAllocator};
use crate::topology::ClusterTopology;
use parking_lot::Mutex;
use std::sync::Arc;
use unimem_sim::Bytes;

/// Shared handle to the DRAM services of every node in the job.
#[derive(Debug, Clone)]
pub struct DramService {
    /// One allocator per rank (its slot's share of its node's allowance).
    slots: Arc<Vec<Mutex<SpaceAllocator>>>,
    /// Rank → node.
    node_of: Vec<usize>,
    /// Rank → base address of its slot in the job address space.
    bases: Vec<u64>,
    /// Rank → its static share of its node's allowance.
    shares: Vec<Bytes>,
    /// Node → its DRAM allowance.
    node_caps: Vec<Bytes>,
}

impl DramService {
    /// One allocator per rank; `ranks` total MPI ranks with `ranks_per_node`
    /// packed per node (the last node may be partially filled). Each rank
    /// owns an equal static share of its node's `dram_per_node` — the
    /// legacy homogeneous layout.
    pub fn new(ranks: usize, ranks_per_node: usize, dram_per_node: Bytes) -> DramService {
        assert!(ranks >= 1 && ranks_per_node >= 1);
        let n_nodes = ranks.div_ceil(ranks_per_node);
        let caps = vec![(dram_per_node, ranks_per_node); n_nodes];
        let node_of = (0..ranks).map(|r| r / ranks_per_node).collect();
        DramService::build(caps, node_of)
    }

    /// One allocator per rank over an explicit (possibly heterogeneous)
    /// machine room: node `n`'s allowance is its spec's `dram_capacity`,
    /// split statically among its `slots` rank slots.
    pub fn from_nodes(topo: &ClusterTopology) -> DramService {
        let caps = (0..topo.n_nodes())
            .map(|n| {
                let node = topo.node(n);
                (node.machine.dram_capacity, node.slots)
            })
            .collect();
        DramService::build(caps, topo.node_assignment().to_vec())
    }

    /// `caps[n]` = (node allowance, slot count) for node `n`; `node_of`
    /// maps each rank to its node. Node address bases are prefix sums of
    /// the allowances; slot offsets within a node follow rank order.
    fn build(caps: Vec<(Bytes, usize)>, node_of: Vec<usize>) -> DramService {
        assert!(!node_of.is_empty());
        let n_nodes = caps.len();
        let mut node_base = Vec::with_capacity(n_nodes);
        let mut acc = 0u64;
        for &(cap, slots) in &caps {
            assert!(slots >= 1);
            node_base.push(acc);
            acc += cap.get();
        }
        let mut seen = vec![0usize; n_nodes];
        let mut bases = Vec::with_capacity(node_of.len());
        let mut shares = Vec::with_capacity(node_of.len());
        for &n in &node_of {
            let (cap, slots) = caps[n];
            let share = Bytes(cap.get() / slots as u64);
            let slot = seen[n];
            assert!(slot < slots, "node {n} overcommitted");
            seen[n] += 1;
            bases.push(node_base[n] + slot as u64 * share.get());
            shares.push(share);
        }
        DramService {
            slots: Arc::new(
                shares
                    .iter()
                    .map(|&s| Mutex::new(SpaceAllocator::new(s)))
                    .collect(),
            ),
            node_of,
            bases,
            shares,
            node_caps: caps.into_iter().map(|(cap, _)| cap).collect(),
        }
    }

    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    pub fn node_count(&self) -> usize {
        self.node_caps.len()
    }

    /// Try to reserve `size` bytes of DRAM for `rank` from its static
    /// share. Non-blocking.
    pub fn reserve(&self, rank: usize, size: Bytes) -> Option<Region> {
        let mut region = self.slots[rank].lock().alloc(size)?;
        region.offset += self.bases[rank];
        Some(region)
    }

    /// Return a region previously granted to `rank`.
    pub fn release(&self, rank: usize, mut region: Region) {
        region.offset -= self.bases[rank];
        self.slots[rank].lock().free(region);
    }

    /// Free DRAM in `rank`'s share right now.
    pub fn available(&self, rank: usize) -> Bytes {
        self.slots[rank].lock().available()
    }

    /// Largest single allocatable run in `rank`'s share.
    pub fn largest_run(&self, rank: usize) -> Bytes {
        self.slots[rank].lock().largest_free_run()
    }

    /// `rank`'s static share of its node's allowance (the knapsack's
    /// capacity input; per-rank, since nodes may differ).
    pub fn share_of(&self, rank: usize) -> Bytes {
        self.shares[rank]
    }

    /// Rank 0's static share — the single job-wide share on a
    /// homogeneous room (every legacy call site).
    pub fn per_rank_share(&self) -> Bytes {
        self.shares[0]
    }

    /// Node 0's DRAM allowance — the single per-node allowance on a
    /// homogeneous room (every legacy call site).
    pub fn capacity(&self) -> Bytes {
        self.node_caps[0]
    }

    /// Node `n`'s DRAM allowance.
    pub fn node_capacity(&self, n: usize) -> Bytes {
        self.node_caps[n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{table1_pcram, table1_stt_ram, MachineConfig};
    use crate::topology::ClusterSpec;

    #[test]
    fn ranks_map_to_nodes() {
        let s = DramService::new(8, 4, Bytes::mib(256));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(3), 0);
        assert_eq!(s.node_of(4), 1);
        assert_eq!(s.node_of(7), 1);
    }

    #[test]
    fn uneven_last_node() {
        let s = DramService::new(5, 4, Bytes::mib(1));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(4), 1);
    }

    #[test]
    fn node_allowance_splits_statically_per_rank() {
        let s = DramService::new(2, 2, Bytes(100));
        assert_eq!(s.per_rank_share(), Bytes(50));
        // A rank cannot exceed its share even while the neighbor is idle:
        // the planner's capacity input is the share, and borrowing would
        // make admission depend on host scheduling.
        assert!(s.reserve(0, Bytes(80)).is_none());
        let r = s.reserve(0, Bytes(50)).unwrap();
        // The neighbor's share is untouched either way.
        assert_eq!(s.available(1), Bytes(50));
        assert!(s.reserve(1, Bytes(40)).is_some());
        s.release(0, r);
        assert_eq!(s.available(0), Bytes(50));
    }

    #[test]
    fn colocated_regions_never_alias() {
        let s = DramService::new(4, 2, Bytes(100));
        // Ranks 0/1 share node 0, ranks 2/3 node 1; same-shaped
        // reservations must land on pairwise disjoint addresses.
        let regions: Vec<Region> = (0..4).map(|r| s.reserve(r, Bytes(30)).unwrap()).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(
                    a.offset + a.len <= b.offset || b.offset + b.len <= a.offset,
                    "overlap: {a:?} vs {b:?}"
                );
            }
        }
        // Release round-trips through the rebasing.
        for (r, region) in regions.into_iter().enumerate() {
            s.release(r, region);
            assert_eq!(s.available(r), Bytes(50));
        }
    }

    #[test]
    fn ranks_on_different_nodes_are_independent() {
        let s = DramService::new(2, 1, Bytes(100));
        let _ = s.reserve(0, Bytes(100)).unwrap();
        assert!(s.reserve(1, Bytes(100)).is_some());
    }

    #[test]
    fn reservations_are_order_independent_across_ranks() {
        // The allocation outcome for one rank is a pure function of its
        // own request history — co-located activity cannot change it.
        let solo = DramService::new(2, 2, Bytes(1000));
        let busy = DramService::new(2, 2, Bytes(1000));
        for _ in 0..30 {
            let _ = busy.reserve(1, Bytes(17));
        }
        for i in 0..20 {
            let a = solo.reserve(0, Bytes(7 * (i % 3) + 1));
            let b = busy.reserve(0, Bytes(7 * (i % 3) + 1));
            assert_eq!(a.map(|r| r.len), b.map(|r| r.len));
        }
        assert_eq!(solo.available(0), busy.available(0));
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let s = DramService::new(4, 4, Bytes(1000));
        let grants: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|rank| {
                    let s = s.clone();
                    scope.spawn(move || {
                        (0..50)
                            .filter_map(|_| s.reserve(rank, Bytes(7)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let total: u64 = grants.iter().flatten().map(|r| r.len).sum();
        assert!(total <= 1000, "overcommitted: {total}");
        // Regions must be pairwise disjoint.
        let mut all: Vec<_> = grants.into_iter().flatten().collect();
        all.sort_by_key(|r| r.offset);
        for w in all.windows(2) {
            assert!(w[0].offset + w[0].len <= w[1].offset, "overlap: {w:?}");
        }
    }

    #[test]
    fn heterogeneous_nodes_grant_their_own_shares() {
        let big =
            MachineConfig::technology(table1_stt_ram(), "stt-ram").with_dram_capacity(Bytes(400));
        let small =
            MachineConfig::technology(table1_pcram(), "pcram").with_dram_capacity(Bytes(100));
        let topo = ClusterTopology::contiguous(ClusterSpec::mixed(vec![big, small], 2), 4);
        let s = DramService::from_nodes(&topo);
        assert_eq!(s.share_of(0), Bytes(200), "big-memory node share");
        assert_eq!(s.share_of(2), Bytes(50), "small-memory node share");
        // Shares stay disjoint across the heterogeneous bases.
        let regions: Vec<Region> = (0..4).map(|r| s.reserve(r, Bytes(40)).unwrap()).collect();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(
                    a.offset + a.len <= b.offset || b.offset + b.len <= a.offset,
                    "overlap: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn from_nodes_homogeneous_matches_legacy_addresses() {
        let m = MachineConfig::nvm_bw_fraction(0.5)
            .with_ranks_per_node(2)
            .with_dram_capacity(Bytes(100));
        let legacy = DramService::new(4, 2, Bytes(100));
        let topo = ClusterTopology::homogeneous(&m, 4);
        let explicit = DramService::from_nodes(&topo);
        for r in 0..4 {
            assert_eq!(legacy.share_of(r), explicit.share_of(r));
            let a = legacy.reserve(r, Bytes(30)).unwrap();
            let b = explicit.reserve(r, Bytes(30)).unwrap();
            assert_eq!(a.offset, b.offset, "rank {r} base moved");
        }
    }
}
