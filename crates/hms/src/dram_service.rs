//! Per-node user-level DRAM space service.
//!
//! "Each node runs an instance of such service. The service coordinates the
//! DRAM allocation from multiple MPI processes on the same node" (§3.3).
//! Ranks of the same node share one [`SpaceAllocator`] behind a mutex; the
//! service responds to allocation requests and bounds them within the node's
//! DRAM allowance. Requests never block — a rank that cannot get space keeps
//! its object in NVM, exactly as the runtime's knapsack assumes.

use crate::alloc::{Region, SpaceAllocator};
use parking_lot::Mutex;
use std::sync::Arc;
use unimem_sim::Bytes;

/// Shared handle to the DRAM services of every node in the job.
#[derive(Debug, Clone)]
pub struct DramService {
    nodes: Arc<Vec<Mutex<SpaceAllocator>>>,
    ranks_per_node: usize,
}

impl DramService {
    /// One allocator per node; `ranks` total MPI ranks with `ranks_per_node`
    /// packed per node (the last node may be partially filled).
    pub fn new(ranks: usize, ranks_per_node: usize, dram_per_node: Bytes) -> DramService {
        assert!(ranks >= 1 && ranks_per_node >= 1);
        let n_nodes = ranks.div_ceil(ranks_per_node);
        DramService {
            nodes: Arc::new(
                (0..n_nodes)
                    .map(|_| Mutex::new(SpaceAllocator::new(dram_per_node)))
                    .collect(),
            ),
            ranks_per_node,
        }
    }

    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Try to reserve `size` bytes of DRAM for `rank`. Non-blocking.
    pub fn reserve(&self, rank: usize, size: Bytes) -> Option<Region> {
        self.nodes[self.node_of(rank)].lock().alloc(size)
    }

    /// Return a region previously granted to `rank`.
    pub fn release(&self, rank: usize, region: Region) {
        self.nodes[self.node_of(rank)].lock().free(region);
    }

    /// Free DRAM on `rank`'s node right now.
    pub fn available(&self, rank: usize) -> Bytes {
        self.nodes[self.node_of(rank)].lock().available()
    }

    /// Largest single allocatable run on `rank`'s node.
    pub fn largest_run(&self, rank: usize) -> Bytes {
        self.nodes[self.node_of(rank)].lock().largest_free_run()
    }

    /// Per-node DRAM capacity.
    pub fn capacity(&self) -> Bytes {
        self.nodes[0].lock().capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_map_to_nodes() {
        let s = DramService::new(8, 4, Bytes::mib(256));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(3), 0);
        assert_eq!(s.node_of(4), 1);
        assert_eq!(s.node_of(7), 1);
    }

    #[test]
    fn uneven_last_node() {
        let s = DramService::new(5, 4, Bytes::mib(1));
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.node_of(4), 1);
    }

    #[test]
    fn ranks_on_same_node_share_allowance() {
        let s = DramService::new(2, 2, Bytes(100));
        let r = s.reserve(0, Bytes(80)).unwrap();
        // Rank 1 is on the same node; only 20 left.
        assert!(s.reserve(1, Bytes(40)).is_none());
        assert_eq!(s.available(1), Bytes(20));
        s.release(0, r);
        assert!(s.reserve(1, Bytes(40)).is_some());
    }

    #[test]
    fn ranks_on_different_nodes_are_independent() {
        let s = DramService::new(2, 1, Bytes(100));
        let _ = s.reserve(0, Bytes(100)).unwrap();
        assert!(s.reserve(1, Bytes(100)).is_some());
    }

    #[test]
    fn concurrent_reservations_never_overcommit() {
        let s = DramService::new(4, 4, Bytes(1000));
        let grants: Vec<_> = std::thread::scope(|scope| {
            (0..4)
                .map(|rank| {
                    let s = s.clone();
                    scope.spawn(move || {
                        (0..50)
                            .filter_map(|_| s.reserve(rank, Bytes(7)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let total: u64 = grants.iter().flatten().map(|r| r.len).sum();
        assert!(total <= 1000, "overcommitted: {total}");
        // Regions must be pairwise disjoint.
        let mut all: Vec<_> = grants.into_iter().flatten().collect();
        all.sort_by_key(|r| r.offset);
        for w in all.windows(2) {
            assert!(w[0].offset + w[0].len <= w[1].offset, "overlap: {w:?}");
        }
    }
}
