//! Virtual-time migration engine: the helper thread model.
//!
//! The paper's runtime hands data-movement requests to a helper thread over
//! a FIFO queue; the helper performs copies asynchronously so movement
//! overlaps application execution, and the main thread checks the queue at
//! each phase start (§3.3). In virtual time this becomes:
//!
//! * the helper thread is a single serial resource — migrations execute in
//!   FIFO order, each taking `bytes / copy_rate`;
//! * a migration enqueued at `t` starts at `max(t, helper_free_at)`;
//! * when the main thread *requires* a unit at a phase start, any remaining
//!   copy time is exposed as a stall — that stall is exactly the
//!   non-overlapped data movement cost of Eq. 4, and the overlapped/exposed
//!   split is what Table 4 reports as "% overlap".
//!
//! The engine does not own a private copy bandwidth: it is a client of
//! the node's shared-bandwidth model through a [`HelperLink`]. Its copy
//! rate is the node copy path's fair per-helper slice, and every
//! scheduled copy is posted to the node ledger so overlapping compute —
//! this rank's and, after the next fence, its co-located neighbors' —
//! pays for the bandwidth the copy consumes.

use crate::contention::HelperLink;
use crate::journal::{JournalHandle, Record};
use crate::object::UnitId;
use crate::tier::TierKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use unimem_sim::{Bandwidth, Bytes, EventKind, TraceLog, VDur, VTime};

/// One migration's lifecycle record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigRecord {
    pub unit: UnitId,
    pub to: TierKind,
    pub bytes: Bytes,
    pub enqueued: VTime,
    pub start: VTime,
    pub done: VTime,
    /// When the main thread first required the unit (phase start), if ever.
    pub required_at: Option<VTime>,
}

impl MigRecord {
    pub fn duration(&self) -> VDur {
        self.done - self.start
    }

    /// Portion of the copy hidden behind application execution.
    pub fn overlapped(&self) -> VDur {
        match self.required_at {
            None => self.duration(),
            Some(req) => self.duration().saturating_sub(self.done.since(req)),
        }
    }

    /// Portion exposed on the critical path.
    pub fn exposed(&self) -> VDur {
        self.duration().saturating_sub(self.overlapped())
    }
}

/// Aggregate migration statistics (Table 4 columns).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Times of migration (both directions, as the paper counts).
    pub count: u64,
    /// Total migrated bytes.
    pub bytes: Bytes,
    pub to_dram_count: u64,
    pub to_nvm_count: u64,
    /// Copy time hidden behind computation.
    pub overlapped: VDur,
    /// Copy time exposed as stalls.
    pub exposed: VDur,
}

impl MigrationStats {
    /// Table 4's "% overlap": share of data movement cost hidden. `None`
    /// when the run never moved a byte — a report must not claim perfect
    /// overlap for migrations that never happened (it serializes as JSON
    /// `null`).
    pub fn overlap_pct(&self) -> Option<f64> {
        let total = self.overlapped + self.exposed;
        if self.count == 0 && total.is_zero() {
            None
        } else if total.is_zero() {
            // Zero-duration copies only: nothing was exposed.
            Some(100.0)
        } else {
            Some(100.0 * self.overlapped.ratio(total))
        }
    }

    pub fn merge(&mut self, other: &MigrationStats) {
        self.count += other.count;
        self.bytes += other.bytes;
        self.to_dram_count += other.to_dram_count;
        self.to_nvm_count += other.to_nvm_count;
        self.overlapped += other.overlapped;
        self.exposed += other.exposed;
    }
}

/// The virtual-time helper thread.
#[derive(Debug)]
pub struct MigrationEngine {
    link: HelperLink,
    helper_free_at: VTime,
    records: Vec<MigRecord>,
    /// Index of the most recent record per unit.
    latest: HashMap<UnitId, usize>,
    /// Redo journal: every intent is appended *before* its copy is
    /// posted, so a crash mid-copy still knows what was moving where.
    journal: Option<JournalHandle>,
    pub log: TraceLog,
}

impl MigrationEngine {
    /// An engine drawing bandwidth through `link` — the runtime passes a
    /// shared-ledger client so copies are visible to overlapping compute.
    pub fn new(link: HelperLink) -> MigrationEngine {
        MigrationEngine {
            link,
            helper_free_at: VTime::ZERO,
            records: Vec::new(),
            latest: HashMap::new(),
            journal: None,
            log: TraceLog::new(false),
        }
    }

    /// An engine with a fixed private copy bandwidth that posts nothing
    /// to any ledger (unit tests and detached tools).
    pub fn with_copy_bw(copy_bw: Bandwidth) -> MigrationEngine {
        MigrationEngine::new(HelperLink::Fixed(copy_bw))
    }

    pub fn with_trace(mut self) -> MigrationEngine {
        self.log = TraceLog::new(true);
        self
    }

    /// Attach the rank's redo journal (when crash consistency is on):
    /// every enqueue appends a `MigIntent` before the copy is posted,
    /// every first requirement a `MigRequire`.
    pub fn with_journal(mut self, journal: Option<JournalHandle>) -> MigrationEngine {
        self.journal = journal;
        self
    }

    /// The helper's copy rate (its fair slice of the node copy path on
    /// the shared link).
    pub fn copy_bw(&self) -> Bandwidth {
        self.link.copy_rate()
    }

    /// Predicted copy duration for `bytes` (the `data_size / mem_copy_bw`
    /// term of Eq. 4).
    pub fn copy_time(&self, bytes: Bytes) -> VDur {
        self.link.copy_time(bytes)
    }

    /// Enqueue a migration at virtual time `now`. Returns its completion
    /// time. FIFO: it starts when the helper thread frees up. The copy is
    /// posted to the shared ledger (when linked) so overlapping compute
    /// pays for the bandwidth it consumes on both tiers.
    pub fn enqueue(&mut self, unit: UnitId, to: TierKind, bytes: Bytes, now: VTime) -> VTime {
        let start = now.max(self.helper_free_at);
        let done = start + self.copy_time(bytes);
        self.helper_free_at = done;
        // Redo rule: the intent reaches the journal before the copy is
        // scheduled, so no copy can be in flight unjournaled.
        if let Some(j) = &self.journal {
            j.lock().append(
                &Record::MigIntent {
                    seq: self.records.len() as u64,
                    obj: unit.obj.0,
                    chunk: unit.chunk,
                    to_dram: to == TierKind::Dram,
                    bytes: bytes.get(),
                    enqueued: now.secs(),
                    start: start.secs(),
                    done: done.secs(),
                },
                now,
            );
        }
        self.link.post_copy(to, start, done, bytes);
        self.log.push(
            now,
            EventKind::MigrationEnqueued,
            format!("{unit}->{}", to.name()),
        );
        self.log.push(
            start,
            EventKind::MigrationStarted,
            format!("{unit}->{}", to.name()),
        );
        self.log.push(
            done,
            EventKind::MigrationCompleted,
            format!("{unit}->{}", to.name()),
        );
        let idx = self.records.len();
        self.records.push(MigRecord {
            unit,
            to,
            bytes,
            enqueued: now,
            start,
            done,
            required_at: None,
        });
        self.latest.insert(unit, idx);
        done
    }

    /// Completion time of the most recent migration of `unit`, if any.
    pub fn ready_time(&self, unit: UnitId) -> Option<VTime> {
        self.latest.get(&unit).map(|&i| self.records[i].done)
    }

    /// Main thread requires `unit` at `now` (phase start). Returns the stall
    /// needed before the unit is usable and records the requirement for
    /// overlap accounting. Only the first requirement after a migration
    /// counts — later phases see the data already resident.
    pub fn require(&mut self, unit: UnitId, now: VTime) -> VDur {
        let Some(&idx) = self.latest.get(&unit) else {
            return VDur::ZERO;
        };
        let rec = &mut self.records[idx];
        if rec.required_at.is_none() {
            rec.required_at = Some(now);
        } else {
            return VDur::ZERO;
        }
        let stall = rec.done.since(now);
        if let Some(j) = &self.journal {
            j.lock().append(
                &Record::MigRequire {
                    seq: idx as u64,
                    at: now.secs(),
                    stall: stall.secs(),
                },
                now,
            );
        }
        if !stall.is_zero() {
            self.log.push(
                now,
                EventKind::MigrationStall,
                format!("{unit} stall {stall}"),
            );
        }
        stall
    }

    /// True when the helper thread has nothing queued after `now`.
    pub fn idle_at(&self, now: VTime) -> bool {
        self.helper_free_at <= now
    }

    pub fn records(&self) -> &[MigRecord] {
        &self.records
    }

    /// Aggregate statistics over all recorded migrations.
    pub fn stats(&self) -> MigrationStats {
        let mut s = MigrationStats::default();
        for r in &self.records {
            s.count += 1;
            s.bytes += r.bytes;
            match r.to {
                TierKind::Dram => s.to_dram_count += 1,
                TierKind::Nvm => s.to_nvm_count += 1,
            }
            s.overlapped += r.overlapped();
            s.exposed += r.exposed();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjId;

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    fn engine() -> MigrationEngine {
        // 1 GB/s copy bandwidth: 1 MB copies take 1 ms.
        MigrationEngine::with_copy_bw(Bandwidth::gb_per_s(1.0))
    }

    #[test]
    fn copy_time_is_size_over_bw() {
        let e = engine();
        assert!((e.copy_time(Bytes(1_000_000)).millis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fifo_serializes_the_helper_thread() {
        let mut e = engine();
        let d1 = e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        let d2 = e.enqueue(unit(1), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        assert!((d1.secs() - 0.001).abs() < 1e-12);
        // Second starts only when the first finishes.
        assert!((d2.secs() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn fully_overlapped_when_required_late() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        let stall = e.require(unit(0), VTime(0.010));
        assert!(stall.is_zero());
        let s = e.stats();
        assert_eq!(s.overlap_pct(), Some(100.0));
        assert_eq!(s.exposed, VDur::ZERO);
    }

    #[test]
    fn exposed_when_required_early() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        // Required immediately: the whole 1 ms copy is exposed.
        let stall = e.require(unit(0), VTime(0.0));
        assert!((stall.millis() - 1.0).abs() < 1e-9);
        let s = e.stats();
        assert!((s.exposed.millis() - 1.0).abs() < 1e-9);
        assert!(s.overlap_pct().expect("migrations happened") < 1e-9);
    }

    #[test]
    fn partial_overlap() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        // Required halfway through the copy: 0.5 ms exposed, 0.5 ms hidden.
        let stall = e.require(unit(0), VTime(0.0005));
        assert!((stall.millis() - 0.5).abs() < 1e-9);
        let s = e.stats();
        assert!((s.overlap_pct().expect("migrations happened") - 50.0).abs() < 1e-6);
    }

    #[test]
    fn second_require_is_free() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        let _ = e.require(unit(0), VTime(0.0));
        assert!(e.require(unit(0), VTime(0.0)).is_zero());
    }

    #[test]
    fn unmigrated_unit_needs_no_wait() {
        let mut e = engine();
        assert!(e.require(unit(9), VTime(0.0)).is_zero());
    }

    #[test]
    fn eviction_counts_as_fully_overlapped() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Nvm, Bytes(2_000_000), VTime(0.0));
        let s = e.stats();
        assert_eq!(s.to_nvm_count, 1);
        assert_eq!(s.overlap_pct(), Some(100.0));
    }

    #[test]
    fn stats_accumulate_counts_and_bytes() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(100), VTime(0.0));
        e.enqueue(unit(1), TierKind::Nvm, Bytes(200), VTime(0.0));
        e.enqueue(unit(0), TierKind::Nvm, Bytes(100), VTime(1.0));
        let s = e.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.bytes, Bytes(400));
        assert_eq!(s.to_dram_count, 1);
        assert_eq!(s.to_nvm_count, 2);
    }

    #[test]
    fn ready_time_tracks_latest() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        let d2 = e.enqueue(unit(0), TierKind::Nvm, Bytes(1_000_000), VTime(5.0));
        assert_eq!(e.ready_time(unit(0)), Some(d2));
        assert_eq!(e.ready_time(unit(3)), None);
    }

    #[test]
    fn idle_tracking() {
        let mut e = engine();
        assert!(e.idle_at(VTime(0.0)));
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        assert!(!e.idle_at(VTime(0.0005)));
        assert!(e.idle_at(VTime(0.002)));
    }

    #[test]
    fn trace_records_lifecycle() {
        let mut e = engine().with_trace();
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        assert!(e.log.find(&EventKind::MigrationEnqueued, "obj0").is_some());
        assert!(e.log.find(&EventKind::MigrationCompleted, "obj0").is_some());
    }

    #[test]
    fn empty_stats_report_no_overlap_figure() {
        let e = engine();
        assert_eq!(
            e.stats().overlap_pct(),
            None,
            "zero migrations must not claim perfect overlap"
        );
    }

    #[test]
    fn zero_duration_copies_report_full_overlap_not_null() {
        let mut e = engine();
        e.enqueue(unit(0), TierKind::Dram, Bytes(0), VTime(0.0));
        assert_eq!(e.stats().overlap_pct(), Some(100.0));
    }

    // MigRecord overlapped/exposed edge cases: the accounting invariant
    // `overlapped + exposed == duration` must hold for every ordering of
    // (enqueued, start, done, required_at), including requirements that
    // precede the copy's start.

    fn record(start: f64, done: f64, required_at: Option<f64>) -> MigRecord {
        MigRecord {
            unit: unit(0),
            to: TierKind::Dram,
            bytes: Bytes(1),
            enqueued: VTime(0.0),
            start: VTime(start),
            done: VTime(done),
            required_at: required_at.map(VTime),
        }
    }

    #[test]
    fn required_before_start_is_fully_exposed() {
        // Enqueued at 0, helper busy until 2, required at 1 — before the
        // copy even starts. The whole copy is on the critical path.
        let r = record(2.0, 3.0, Some(1.0));
        assert_eq!(r.overlapped(), VDur::ZERO);
        assert_eq!(r.exposed(), r.duration());
    }

    #[test]
    fn zero_duration_record_accounts_zero_both_ways() {
        for req in [None, Some(0.0), Some(1.0)] {
            let r = record(2.0, 2.0, req);
            assert_eq!(r.duration(), VDur::ZERO);
            assert_eq!(r.overlapped(), VDur::ZERO);
            assert_eq!(r.exposed(), VDur::ZERO);
        }
    }

    #[test]
    fn journaled_engine_records_intent_and_requirement() {
        use crate::journal::{DurabilityMode, Journal, ReplayedState};
        let j = Journal::new(DurabilityMode::Strict).into_handle();
        let mut e = engine().with_journal(Some(j.clone()));
        e.enqueue(unit(0), TierKind::Dram, Bytes(1_000_000), VTime(0.0));
        let _ = e.require(unit(0), VTime(0.0005));
        let st = ReplayedState::replay(j.lock().bytes());
        assert_eq!(st.migrations.len(), 1);
        let m = &st.migrations[&0];
        assert!(m.to_dram);
        assert_eq!(m.bytes, 1_000_000);
        assert_eq!(m.required_at, Some(0.0005));
        assert_eq!(st.in_flight_at(VTime(0.0005)), vec![0]);
    }

    #[test]
    fn required_exactly_at_done_is_fully_overlapped() {
        let r = record(1.0, 2.0, Some(2.0));
        assert_eq!(r.overlapped(), r.duration());
        assert_eq!(r.exposed(), VDur::ZERO);
    }
}
