//! Crash-consistent redo journal for placement state.
//!
//! NVM's defining property is persistence, and until this module the
//! runtime treated it as slow RAM: a kill mid-migration lost the object
//! table and every in-flight copy. The journal is a per-rank redo log of
//! everything placement-relevant — object registrations, the initial
//! DRAM residency, every migration *intent* (appended before the copy is
//! scheduled), phase observations, and epoch commit marks riding the MPI
//! fences the bandwidth ledger already defines. Recovery
//! (`unimem::recovery`) replays the durable prefix to the last
//! consistent placement and resumes from there.
//!
//! ## Durability modes
//!
//! Following the WAL shape of strata-core (SNIPPETS.md §2), the journal
//! offers three durability/throughput trade-offs:
//!
//! | mode       | records on NVM after a crash at `T`          | write cost charged            |
//! |------------|----------------------------------------------|-------------------------------|
//! | `InMemory` | none — the log lives in DRAM and dies with it | zero                          |
//! | `Buffered` | all records up to the last epoch commit ≤ `T` | one flush per fence epoch     |
//! | `Strict`   | every record appended at or before `T`        | one flush per appended record |
//!
//! Flushes are not free bandwidth: each one is charged as NVM-write
//! traffic through the node's shared [`BwClient`] ledger (when linked),
//! so journal durability contends with application accesses and helper
//! copies exactly like any other writer, and its CPU + write time is
//! drained into the rank's virtual clock by the execution driver.
//!
//! ## Wire format
//!
//! The log is a flat byte stream of self-validating frames:
//!
//! ```text
//! [len: u32 LE] [at: f64 LE]  [crc: u64 LE]   [payload: len bytes]
//!  payload len   append vtime  FNV-1a(at ∥ payload)
//! ```
//!
//! A crash can truncate the stream at any byte. [`read_journal`] accepts
//! the longest prefix of structurally valid frames and reports every
//! trailing byte past it as torn — a half-written frame fails the length
//! or CRC check and is discarded, never replayed. Because append times
//! are monotone, the set of records durable at a crash instant is always
//! a prefix, which is what [`durable_prefix`] computes per mode.

use crate::contention::BwClient;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use unimem_sim::{Bandwidth, Bytes, CrashSpec, VDur, VTime};

/// Frame header: payload length, append vtime, payload checksum.
const FRAME_HEADER: usize = 4 + 8 + 8;

/// When the log flushes to NVM — strata-core's WAL vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DurabilityMode {
    /// Never: the log is a DRAM-resident trace. Zero cost, zero
    /// durability — recovery degenerates to a full restart.
    InMemory,
    /// At epoch commits (MPI fences): group-commit batching. A crash
    /// loses at most one epoch of records.
    Buffered,
    /// On every append: each record is durable before the action it
    /// describes starts. A crash loses nothing that was appended.
    Strict,
}

impl DurabilityMode {
    pub const ALL: [DurabilityMode; 3] = [
        DurabilityMode::InMemory,
        DurabilityMode::Buffered,
        DurabilityMode::Strict,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            DurabilityMode::InMemory => "in-memory",
            DurabilityMode::Buffered => "buffered",
            DurabilityMode::Strict => "strict",
        }
    }

    pub fn parse(s: &str) -> Option<DurabilityMode> {
        DurabilityMode::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Per-unit sampler input of one observed compute phase, as raw numbers
/// (the journal deliberately does not depend on `unimem_perf`; the
/// recovery layer converts to and from `GroundTruth`).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsUnit {
    pub obj: u32,
    pub chunk: u16,
    pub misses: u64,
    pub miss_bytes: u64,
    pub mem_time: f64,
}

/// One journal record. Everything needed to reconstruct the placement
/// state machine — and, for observations, to replay the run itself
/// without recomputing ground truth.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Run identity, appended first.
    RunHeader {
        rank: u32,
        nranks: u32,
        iterations: u64,
    },
    /// One `unimem_malloc`ed object, with its final chunking.
    ObjectReg { obj: u32, size: u64, chunks: u16 },
    /// One unit initially resident in DRAM (estimate-driven placement).
    InitPlace { obj: u32, chunk: u16 },
    /// A migration scheduled on the helper queue. Appended *before* the
    /// copy is posted — the redo rule — so a crash mid-copy still knows
    /// the copy's destination and schedule.
    MigIntent {
        seq: u64,
        obj: u32,
        chunk: u16,
        to_dram: bool,
        bytes: u64,
        enqueued: f64,
        start: f64,
        done: f64,
    },
    /// The main thread first required migration `seq` (overlap/stall
    /// accounting).
    MigRequire { seq: u64, at: f64, stall: f64 },
    /// One observed compute phase: its ground-truth time, contention
    /// split, and per-unit sampler inputs.
    Observe {
        seq: u64,
        phase: u32,
        time: f64,
        cont_total: f64,
        cont_neighbors: f64,
        units: Vec<ObsUnit>,
    },
    /// One communication phase and its synchronized duration.
    Comm { seq: u64, phase: u32, dt: f64 },
    /// An MPI-fence epoch commit: ledger generation and fence instant.
    EpochCommit { gen: u64, at: f64 },
}

// ---------------------------------------------------------------------------
// Encoding

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor-style reader; every getter fails on a short buffer.
struct Rd<'a> {
    b: &'a [u8],
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.b.len() < n {
            return None;
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
    }
    fn done(&self) -> bool {
        self.b.is_empty()
    }
}

const TAG_RUN_HEADER: u8 = 0;
const TAG_OBJECT_REG: u8 = 1;
const TAG_INIT_PLACE: u8 = 2;
const TAG_MIG_INTENT: u8 = 3;
const TAG_MIG_REQUIRE: u8 = 4;
const TAG_OBSERVE: u8 = 5;
const TAG_COMM: u8 = 6;
const TAG_EPOCH_COMMIT: u8 = 7;

impl Record {
    /// Serialize the payload (tag byte + fields, little-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            Record::RunHeader {
                rank,
                nranks,
                iterations,
            } => {
                b.push(TAG_RUN_HEADER);
                put_u32(&mut b, *rank);
                put_u32(&mut b, *nranks);
                put_u64(&mut b, *iterations);
            }
            Record::ObjectReg { obj, size, chunks } => {
                b.push(TAG_OBJECT_REG);
                put_u32(&mut b, *obj);
                put_u64(&mut b, *size);
                put_u16(&mut b, *chunks);
            }
            Record::InitPlace { obj, chunk } => {
                b.push(TAG_INIT_PLACE);
                put_u32(&mut b, *obj);
                put_u16(&mut b, *chunk);
            }
            Record::MigIntent {
                seq,
                obj,
                chunk,
                to_dram,
                bytes,
                enqueued,
                start,
                done,
            } => {
                b.push(TAG_MIG_INTENT);
                put_u64(&mut b, *seq);
                put_u32(&mut b, *obj);
                put_u16(&mut b, *chunk);
                b.push(u8::from(*to_dram));
                put_u64(&mut b, *bytes);
                put_f64(&mut b, *enqueued);
                put_f64(&mut b, *start);
                put_f64(&mut b, *done);
            }
            Record::MigRequire { seq, at, stall } => {
                b.push(TAG_MIG_REQUIRE);
                put_u64(&mut b, *seq);
                put_f64(&mut b, *at);
                put_f64(&mut b, *stall);
            }
            Record::Observe {
                seq,
                phase,
                time,
                cont_total,
                cont_neighbors,
                units,
            } => {
                b.push(TAG_OBSERVE);
                put_u64(&mut b, *seq);
                put_u32(&mut b, *phase);
                put_f64(&mut b, *time);
                put_f64(&mut b, *cont_total);
                put_f64(&mut b, *cont_neighbors);
                put_u32(&mut b, units.len() as u32);
                for u in units {
                    put_u32(&mut b, u.obj);
                    put_u16(&mut b, u.chunk);
                    put_u64(&mut b, u.misses);
                    put_u64(&mut b, u.miss_bytes);
                    put_f64(&mut b, u.mem_time);
                }
            }
            Record::Comm { seq, phase, dt } => {
                b.push(TAG_COMM);
                put_u64(&mut b, *seq);
                put_u32(&mut b, *phase);
                put_f64(&mut b, *dt);
            }
            Record::EpochCommit { gen, at } => {
                b.push(TAG_EPOCH_COMMIT);
                put_u64(&mut b, *gen);
                put_f64(&mut b, *at);
            }
        }
        b
    }

    /// Parse one payload. `None` on any structural problem (unknown tag,
    /// short or over-long buffer) — the caller treats that as a torn
    /// record.
    pub fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Rd { b: payload };
        let rec = match r.u8()? {
            TAG_RUN_HEADER => Record::RunHeader {
                rank: r.u32()?,
                nranks: r.u32()?,
                iterations: r.u64()?,
            },
            TAG_OBJECT_REG => Record::ObjectReg {
                obj: r.u32()?,
                size: r.u64()?,
                chunks: r.u16()?,
            },
            TAG_INIT_PLACE => Record::InitPlace {
                obj: r.u32()?,
                chunk: r.u16()?,
            },
            TAG_MIG_INTENT => Record::MigIntent {
                seq: r.u64()?,
                obj: r.u32()?,
                chunk: r.u16()?,
                to_dram: r.u8()? != 0,
                bytes: r.u64()?,
                enqueued: r.f64()?,
                start: r.f64()?,
                done: r.f64()?,
            },
            TAG_MIG_REQUIRE => Record::MigRequire {
                seq: r.u64()?,
                at: r.f64()?,
                stall: r.f64()?,
            },
            TAG_OBSERVE => {
                let seq = r.u64()?;
                let phase = r.u32()?;
                let time = r.f64()?;
                let cont_total = r.f64()?;
                let cont_neighbors = r.f64()?;
                let n = r.u32()?;
                let mut units = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    units.push(ObsUnit {
                        obj: r.u32()?,
                        chunk: r.u16()?,
                        misses: r.u64()?,
                        miss_bytes: r.u64()?,
                        mem_time: r.f64()?,
                    });
                }
                Record::Observe {
                    seq,
                    phase,
                    time,
                    cont_total,
                    cont_neighbors,
                    units,
                }
            }
            TAG_COMM => Record::Comm {
                seq: r.u64()?,
                phase: r.u32()?,
                dt: r.f64()?,
            },
            TAG_EPOCH_COMMIT => Record::EpochCommit {
                gen: r.u64()?,
                at: r.f64()?,
            },
            _ => return None,
        };
        r.done().then_some(rec)
    }
}

/// FNV-1a 64 over the frame's vtime bytes and payload. The hand-rolled
/// loop this used to be moved to the vendored `fnv` crate when the sweep
/// cache needed the same digest family; the constants are identical, so
/// journals written before the change verify unchanged.
fn crc64(at: f64, payload: &[u8]) -> u64 {
    fnv::Fnv64::new()
        .update(&at.to_le_bytes())
        .update(payload)
        .finish()
}

fn encode_frame(buf: &mut Vec<u8>, rec: &Record, at: VTime) {
    let payload = rec.encode();
    put_u32(buf, payload.len() as u32);
    put_f64(buf, at.secs());
    put_u64(buf, crc64(at.secs(), &payload));
    buf.extend_from_slice(&payload);
}

/// Parse a (possibly truncated) journal byte stream: the longest valid
/// frame prefix, plus the count of trailing torn bytes that failed the
/// length or CRC check and must not be replayed.
pub fn read_journal(bytes: &[u8]) -> (Vec<(Record, VTime)>, usize) {
    let mut out = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let at = f64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        let crc = u64::from_le_bytes(bytes[off + 12..off + 20].try_into().unwrap());
        let start = off + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // torn: frame extends past the medium
        };
        let payload = &bytes[start..end];
        if crc64(at, payload) != crc {
            break; // torn: partial frame body overwritten the header lied about
        }
        let Some(rec) = Record::decode(payload) else {
            break; // torn: structurally invalid payload
        };
        out.push((rec, VTime(at)));
        off = end;
    }
    (out, bytes.len() - off)
}

/// The bytes actually on NVM after a crash at `crash.at`, given the full
/// journal `bytes` an uninterrupted run would have written. Determinism
/// makes this exact: a run killed at `T` behaves identically to the
/// clean run up to `T`, so its durable log is a prefix of the clean log.
///
/// With `crash.torn`, the first record past the durable point is half
/// written — a partial frame recovery must detect and discard.
pub fn durable_prefix(bytes: &[u8], mode: DurabilityMode, crash: CrashSpec) -> Vec<u8> {
    if mode == DurabilityMode::InMemory {
        return Vec::new();
    }
    let t = crash.at.secs();
    let mut cut = 0usize;
    let mut off = 0usize;
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let at = f64::from_le_bytes(bytes[off + 4..off + 12].try_into().unwrap());
        let end = off + FRAME_HEADER + len;
        if end > bytes.len() || at > t {
            break;
        }
        let durable = match mode {
            DurabilityMode::Strict => true,
            // Buffered flushes whole epochs at the commit record.
            DurabilityMode::Buffered => bytes[off + FRAME_HEADER] == TAG_EPOCH_COMMIT,
            DurabilityMode::InMemory => unreachable!(),
        };
        if durable {
            cut = end;
        }
        off = end;
    }
    let mut out = bytes[..cut].to_vec();
    if crash.torn && cut + FRAME_HEADER <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[cut..cut + 4].try_into().unwrap()) as usize + FRAME_HEADER;
        let torn_len = (len / 2).max(1).min(len - 1);
        out.extend_from_slice(&bytes[cut..(cut + torn_len).min(bytes.len())]);
    }
    out
}

// ---------------------------------------------------------------------------
// The journal writer

/// Aggregate journal accounting, for recovery reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JournalStats {
    /// Records appended.
    pub records: u64,
    /// Total bytes appended (frames included).
    pub appended_bytes: u64,
    /// Bytes flushed to NVM.
    pub flushed_bytes: u64,
    /// NVM flush operations.
    pub flushes: u64,
    /// Epoch commits.
    pub commits: u64,
    /// Total virtual time charged for appends and flushes.
    pub write_cost: VDur,
}

/// Per-rank redo journal writer. Logically single-threaded — each rank
/// owns one and only that rank's program order touches it — but the
/// pooled executor may run successive segments of a rank on different
/// worker threads, so the handle is an uncontended `Arc<Mutex<_>>`
/// rather than `Rc<RefCell<_>>`.
#[derive(Debug)]
pub struct Journal {
    mode: DurabilityMode,
    /// This rank's share of the node NVM write path, for flush timing.
    write_bw: Bandwidth,
    /// CPU cost of formatting + appending one record (non-`InMemory`).
    append_cpu: VDur,
    /// Fixed per-flush latency (write barrier / persist fence).
    flush_lat: VDur,
    link: Option<BwClient>,
    buf: Vec<u8>,
    /// Offset of the first byte not yet flushed to NVM.
    unflushed: usize,
    /// Virtual time owed to the rank's clock, drained by the driver.
    pending: VDur,
    next_seq: u64,
    stats: JournalStats,
}

/// Shared per-rank handle: the execution driver and the migration
/// engine append to the same per-rank journal. Never contended — the
/// lock exists so rank state can migrate across pool workers.
pub type JournalHandle = Arc<Mutex<Journal>>;

impl Journal {
    pub fn new(mode: DurabilityMode) -> Journal {
        Journal {
            mode,
            write_bw: Bandwidth::gb_per_s(1.0),
            append_cpu: VDur::from_nanos(60.0),
            flush_lat: VDur::from_nanos(800.0),
            link: None,
            buf: Vec::new(),
            unflushed: 0,
            pending: VDur::ZERO,
            next_seq: 0,
            stats: JournalStats::default(),
        }
    }

    /// Time a flush against `bw` (the rank's NVM write share).
    pub fn with_write_bw(mut self, bw: Bandwidth) -> Journal {
        self.write_bw = bw;
        self
    }

    /// Post flushes as NVM-write flows on the node ledger, so journal
    /// traffic contends with application and helper writers.
    pub fn with_link(mut self, client: BwClient) -> Journal {
        self.link = Some(client);
        self
    }

    /// Wrap into the shared per-rank handle.
    pub fn into_handle(self) -> JournalHandle {
        Arc::new(Mutex::new(self))
    }

    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// Next record sequence number (observation/communication stream).
    pub fn next_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Append one record at virtual time `now`. `Strict` flushes it
    /// immediately; `Buffered` leaves it for the next commit; `InMemory`
    /// costs nothing and never reaches NVM.
    pub fn append(&mut self, rec: &Record, now: VTime) {
        let before = self.buf.len();
        encode_frame(&mut self.buf, rec, now);
        self.stats.records += 1;
        self.stats.appended_bytes += (self.buf.len() - before) as u64;
        match self.mode {
            DurabilityMode::InMemory => {}
            DurabilityMode::Buffered => {
                self.pending += self.append_cpu;
                self.stats.write_cost += self.append_cpu;
            }
            DurabilityMode::Strict => {
                self.pending += self.append_cpu;
                self.stats.write_cost += self.append_cpu;
                self.flush(now);
            }
        }
    }

    /// Epoch commit at an MPI fence: append the commit mark and make the
    /// epoch durable (`Buffered` group-commits everything buffered since
    /// the last fence).
    pub fn commit(&mut self, gen: u64, now: VTime) {
        self.append(
            &Record::EpochCommit {
                gen,
                at: now.secs(),
            },
            now,
        );
        self.stats.commits += 1;
        if self.mode == DurabilityMode::Buffered {
            self.flush(now);
        }
    }

    fn flush(&mut self, now: VTime) {
        let n = self.buf.len() - self.unflushed;
        if n == 0 {
            return;
        }
        let bytes = Bytes(n as u64);
        let dt = bytes / self.write_bw + self.flush_lat;
        if let Some(c) = &self.link {
            c.post_journal_write(now, now + dt, bytes);
        }
        self.pending += dt;
        self.stats.write_cost += dt;
        self.stats.flushes += 1;
        self.stats.flushed_bytes += n as u64;
        self.unflushed = self.buf.len();
    }

    /// Drain the virtual time owed for appends and flushes since the
    /// last drain; the driver advances the rank clock by this much.
    pub fn take_cost(&mut self) -> VDur {
        std::mem::take(&mut self.pending)
    }

    /// The full byte stream appended so far (durable or not — what a
    /// clean run's journal looks like; [`durable_prefix`] projects it
    /// onto a crash).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Replay

/// One replayed migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigEntry {
    pub obj: u32,
    pub chunk: u16,
    pub to_dram: bool,
    pub bytes: u64,
    pub enqueued: f64,
    pub start: f64,
    pub done: f64,
    /// Filled by a later `MigRequire` record, if any.
    pub required_at: Option<f64>,
}

/// One replayed compute observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedPhase {
    pub phase: u32,
    pub time: f64,
    pub cont_total: f64,
    pub cont_neighbors: f64,
    pub units: Vec<ObsUnit>,
}

/// The placement state machine reconstructed from a (possibly
/// truncated) journal. Every collection is keyed — by object, unit,
/// migration sequence, epoch generation, or record sequence — so
/// applying the same record twice is a no-op: **replay is idempotent**.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayedState {
    /// `(rank, nranks, iterations)` from the run header.
    pub header: Option<(u32, u32, u64)>,
    /// Object table: id → (size, chunks).
    pub objects: BTreeMap<u32, (u64, u16)>,
    /// Units initially resident in DRAM.
    pub initial_dram: BTreeSet<(u32, u16)>,
    /// Migrations by helper-queue sequence.
    pub migrations: BTreeMap<u64, MigEntry>,
    /// Epoch commits: ledger generation → fence vtime.
    pub commits: BTreeMap<u64, f64>,
    /// Compute observations by record sequence.
    pub observes: BTreeMap<u64, ObservedPhase>,
    /// Communication phases by record sequence: `(phase, dt)`.
    pub comms: BTreeMap<u64, (u32, f64)>,
    /// Append vtime of the latest replayed record.
    pub last_at: f64,
    /// Torn trailing bytes detected and discarded by the frame parser.
    pub torn_bytes_discarded: usize,
}

impl ReplayedState {
    /// Replay a journal byte stream (tolerates a torn tail).
    pub fn replay(bytes: &[u8]) -> ReplayedState {
        let (records, torn) = read_journal(bytes);
        let mut st = ReplayedState {
            torn_bytes_discarded: torn,
            ..ReplayedState::default()
        };
        for (rec, at) in &records {
            st.apply(rec, *at);
        }
        st
    }

    /// Apply one record. Idempotent: replaying a record already applied
    /// changes nothing.
    pub fn apply(&mut self, rec: &Record, at: VTime) {
        self.last_at = self.last_at.max(at.secs());
        match rec {
            Record::RunHeader {
                rank,
                nranks,
                iterations,
            } => self.header = Some((*rank, *nranks, *iterations)),
            Record::ObjectReg { obj, size, chunks } => {
                self.objects.insert(*obj, (*size, *chunks));
            }
            Record::InitPlace { obj, chunk } => {
                self.initial_dram.insert((*obj, *chunk));
            }
            Record::MigIntent {
                seq,
                obj,
                chunk,
                to_dram,
                bytes,
                enqueued,
                start,
                done,
            } => {
                let required_at = self.migrations.get(seq).and_then(|m| m.required_at);
                self.migrations.insert(
                    *seq,
                    MigEntry {
                        obj: *obj,
                        chunk: *chunk,
                        to_dram: *to_dram,
                        bytes: *bytes,
                        enqueued: *enqueued,
                        start: *start,
                        done: *done,
                        required_at,
                    },
                );
            }
            Record::MigRequire { seq, at, stall: _ } => {
                if let Some(m) = self.migrations.get_mut(seq) {
                    m.required_at = Some(*at);
                }
            }
            Record::Observe {
                seq,
                phase,
                time,
                cont_total,
                cont_neighbors,
                units,
            } => {
                self.observes.insert(
                    *seq,
                    ObservedPhase {
                        phase: *phase,
                        time: *time,
                        cont_total: *cont_total,
                        cont_neighbors: *cont_neighbors,
                        units: units.clone(),
                    },
                );
            }
            Record::Comm { seq, phase, dt } => {
                self.comms.insert(*seq, (*phase, *dt));
            }
            Record::EpochCommit { gen, at } => {
                self.commits.insert(*gen, *at);
            }
        }
    }

    /// Total replayed records across all collections.
    pub fn records(&self) -> usize {
        usize::from(self.header.is_some())
            + self.objects.len()
            + self.initial_dram.len()
            + self.migrations.len()
            + self.commits.len()
            + self.observes.len()
            + self.comms.len()
    }

    /// The most recent committed epoch, if any: `(generation, vtime)`.
    pub fn last_commit(&self) -> Option<(u64, f64)> {
        self.commits.iter().next_back().map(|(g, t)| (*g, *t))
    }

    /// DRAM-resident units at virtual time `t`: the initial placement
    /// plus every migration completed by `t`, applied in helper-queue
    /// order (the last completed move of a unit wins).
    pub fn placement_at(&self, t: VTime) -> BTreeSet<(u32, u16)> {
        let mut dram = self.initial_dram.clone();
        for m in self.migrations.values() {
            if m.done <= t.secs() {
                if m.to_dram {
                    dram.insert((m.obj, m.chunk));
                } else {
                    dram.remove(&(m.obj, m.chunk));
                }
            }
        }
        dram
    }

    /// Migrations in flight (enqueued but not completed) at `t` — the
    /// copies a crash at `t` tears, which recovery must resume or roll
    /// back. Returned in helper-queue order.
    pub fn in_flight_at(&self, t: VTime) -> Vec<u64> {
        self.migrations
            .iter()
            .filter(|(_, m)| m.enqueued <= t.secs() && m.done > t.secs())
            .map(|(s, _)| *s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(Record, VTime)> {
        vec![
            (
                Record::RunHeader {
                    rank: 0,
                    nranks: 4,
                    iterations: 10,
                },
                VTime(0.0),
            ),
            (
                Record::ObjectReg {
                    obj: 0,
                    size: 1 << 20,
                    chunks: 2,
                },
                VTime(0.0),
            ),
            (Record::InitPlace { obj: 0, chunk: 0 }, VTime(0.0)),
            (
                Record::MigIntent {
                    seq: 0,
                    obj: 0,
                    chunk: 1,
                    to_dram: true,
                    bytes: 1 << 19,
                    enqueued: 0.5,
                    start: 0.5,
                    done: 0.9,
                },
                VTime(0.5),
            ),
            (
                Record::Observe {
                    seq: 0,
                    phase: 3,
                    time: 0.25,
                    cont_total: 0.01,
                    cont_neighbors: 0.004,
                    units: vec![ObsUnit {
                        obj: 0,
                        chunk: 0,
                        misses: 1000,
                        miss_bytes: 64000,
                        mem_time: 0.2,
                    }],
                },
                VTime(0.75),
            ),
            (
                Record::Comm {
                    seq: 1,
                    phase: 4,
                    dt: 0.05,
                },
                VTime(0.8),
            ),
            (Record::EpochCommit { gen: 1, at: 0.8 }, VTime(0.8)),
            (
                Record::MigRequire {
                    seq: 0,
                    at: 1.0,
                    stall: 0.0,
                },
                VTime(1.0),
            ),
        ]
    }

    fn journal_bytes(mode: DurabilityMode) -> Vec<u8> {
        let mut j = Journal::new(mode);
        for (rec, at) in sample_records() {
            match rec {
                Record::EpochCommit { gen, .. } => j.commit(gen, at),
                rec => j.append(&rec, at),
            }
        }
        j.bytes().to_vec()
    }

    #[test]
    fn roundtrip_every_record_kind() {
        for (rec, _) in sample_records() {
            let enc = rec.encode();
            assert_eq!(Record::decode(&enc).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage_and_short_buffers() {
        let mut enc = (Record::Comm {
            seq: 1,
            phase: 2,
            dt: 0.5,
        })
        .encode();
        assert!(Record::decode(&enc[..enc.len() - 1]).is_none());
        enc.push(0);
        assert!(Record::decode(&enc).is_none());
        assert!(Record::decode(&[99]).is_none(), "unknown tag");
    }

    #[test]
    fn read_journal_roundtrips_a_full_stream() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        let (recs, torn) = read_journal(&bytes);
        assert_eq!(torn, 0);
        let expect: Vec<_> = sample_records();
        assert_eq!(recs.len(), expect.len());
        for ((got, gat), (want, wat)) in recs.iter().zip(&expect) {
            assert_eq!(got, want);
            assert_eq!(gat, wat);
        }
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        for cut in [1, FRAME_HEADER - 1, FRAME_HEADER + 3] {
            let torn = &bytes[..bytes.len() - cut];
            let (recs, discarded) = read_journal(torn);
            assert_eq!(recs.len(), sample_records().len() - 1, "cut {cut}");
            assert!(discarded > 0, "cut {cut}");
            let st = ReplayedState::replay(torn);
            assert_eq!(st.torn_bytes_discarded, discarded);
        }
    }

    #[test]
    fn corrupt_byte_stops_replay_at_the_frame() {
        let mut bytes = journal_bytes(DurabilityMode::Strict);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // flip inside the last frame's payload
        let (recs, discarded) = read_journal(&bytes);
        assert_eq!(recs.len(), sample_records().len() - 1);
        assert!(discarded > 0);
    }

    #[test]
    fn replay_is_idempotent() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        let once = ReplayedState::replay(&bytes);
        let mut twice = once.clone();
        let (recs, _) = read_journal(&bytes);
        for (rec, at) in &recs {
            twice.apply(rec, *at);
        }
        assert_eq!(once, twice, "replaying twice must change nothing");
    }

    #[test]
    fn empty_journal_replays_to_the_default_state() {
        let st = ReplayedState::replay(&[]);
        assert_eq!(st, ReplayedState::default());
        assert_eq!(st.records(), 0);
        assert!(st.placement_at(VTime(1e9)).is_empty());
    }

    #[test]
    fn placement_tracks_initial_set_and_completed_migrations() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        let st = ReplayedState::replay(&bytes);
        // Before the migration completes: only the initial unit.
        assert_eq!(
            st.placement_at(VTime(0.6)),
            [(0u32, 0u16)].into_iter().collect()
        );
        assert_eq!(st.in_flight_at(VTime(0.6)), vec![0]);
        // After: both chunks resident.
        assert_eq!(
            st.placement_at(VTime(1.0)),
            [(0, 0), (0, 1)].into_iter().collect()
        );
        assert!(st.in_flight_at(VTime(1.0)).is_empty());
        assert_eq!(st.migrations[&0].required_at, Some(1.0));
        assert_eq!(st.last_commit(), Some((1, 0.8)));
    }

    #[test]
    fn durable_prefix_in_memory_is_always_empty() {
        let bytes = journal_bytes(DurabilityMode::InMemory);
        assert!(!bytes.is_empty(), "the in-memory log still accumulates");
        let d = durable_prefix(
            &bytes,
            DurabilityMode::InMemory,
            CrashSpec::torn(VTime(0.7)),
        );
        assert!(d.is_empty());
    }

    #[test]
    fn durable_prefix_strict_cuts_at_append_time() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        let d = durable_prefix(&bytes, DurabilityMode::Strict, CrashSpec::at(VTime(0.6)));
        let st = ReplayedState::replay(&d);
        // Records at 0.0 and 0.5 survive; the 0.75 observe does not.
        assert_eq!(st.migrations.len(), 1);
        assert!(st.observes.is_empty());
        assert_eq!(st.torn_bytes_discarded, 0);
    }

    #[test]
    fn durable_prefix_buffered_cuts_at_the_last_commit() {
        let bytes = journal_bytes(DurabilityMode::Buffered);
        // Crash after the fence at 0.8: the whole first epoch is durable.
        let d = durable_prefix(&bytes, DurabilityMode::Buffered, CrashSpec::at(VTime(0.9)));
        let st = ReplayedState::replay(&d);
        assert_eq!(st.last_commit(), Some((1, 0.8)));
        assert_eq!(st.observes.len(), 1);
        // Crash before any fence: nothing was ever flushed.
        let none = durable_prefix(&bytes, DurabilityMode::Buffered, CrashSpec::at(VTime(0.7)));
        assert!(none.is_empty());
    }

    #[test]
    fn crash_exactly_at_a_fence_epoch_keeps_the_commit() {
        let bytes = journal_bytes(DurabilityMode::Buffered);
        let d = durable_prefix(&bytes, DurabilityMode::Buffered, CrashSpec::at(VTime(0.8)));
        let st = ReplayedState::replay(&d);
        assert_eq!(
            st.last_commit(),
            Some((1, 0.8)),
            "a commit at the crash instant is durable (flush happens at the fence)"
        );
    }

    #[test]
    fn torn_crash_leaves_a_fragment_replay_ignores() {
        let bytes = journal_bytes(DurabilityMode::Strict);
        let clean = durable_prefix(&bytes, DurabilityMode::Strict, CrashSpec::at(VTime(0.6)));
        let torn = durable_prefix(&bytes, DurabilityMode::Strict, CrashSpec::torn(VTime(0.6)));
        assert!(torn.len() > clean.len(), "a fragment must be present");
        let a = ReplayedState::replay(&clean);
        let mut b = ReplayedState::replay(&torn);
        assert!(b.torn_bytes_discarded > 0);
        b.torn_bytes_discarded = 0;
        assert_eq!(a, b, "the fragment must not change replayed state");
    }

    #[test]
    fn journal_costs_follow_the_mode() {
        let mk = |mode| {
            let mut j = Journal::new(mode).with_write_bw(Bandwidth::gb_per_s(1.0));
            for (rec, at) in sample_records() {
                match rec {
                    Record::EpochCommit { gen, .. } => j.commit(gen, at),
                    rec => j.append(&rec, at),
                }
            }
            (j.take_cost(), j.stats())
        };
        let (c_mem, s_mem) = mk(DurabilityMode::InMemory);
        let (c_buf, s_buf) = mk(DurabilityMode::Buffered);
        let (c_strict, s_strict) = mk(DurabilityMode::Strict);
        assert_eq!(c_mem, VDur::ZERO);
        assert_eq!(s_mem.flushes, 0);
        assert!(c_buf > VDur::ZERO && c_strict > c_buf);
        assert_eq!(s_buf.flushes, 1, "one group commit");
        assert_eq!(s_strict.flushes, s_strict.records, "flush per append");
        assert!(
            s_buf.flushed_bytes < s_buf.appended_bytes,
            "the record appended after the last commit stays buffered"
        );
        assert_eq!(s_strict.flushed_bytes, s_strict.appended_bytes);
    }

    #[test]
    fn take_cost_drains() {
        let mut j = Journal::new(DurabilityMode::Strict);
        j.append(&Record::InitPlace { obj: 0, chunk: 0 }, VTime(0.0));
        assert!(j.take_cost() > VDur::ZERO);
        assert_eq!(j.take_cost(), VDur::ZERO);
    }

    #[test]
    fn durability_mode_names_parse() {
        for m in DurabilityMode::ALL {
            assert_eq!(DurabilityMode::parse(m.name()), Some(m));
        }
        assert_eq!(DurabilityMode::parse("wal"), None);
    }
}
