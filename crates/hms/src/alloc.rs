//! User-level DRAM space allocator.
//!
//! The paper's DRAM service uses "a simple memory allocator without
//! consideration of memory allocation efficiency and fragmentation, because
//! we expect that data movement should not be frequent" (§3.3). We implement
//! the same thing honestly: a first-fit free list over a byte range, with
//! coalescing on free so long runs stay allocatable. Offsets are virtual —
//! the simulation never backs them with real memory (the [`crate::pools`]
//! module does that for the wall-clock path).

use serde::{Deserialize, Serialize};
use unimem_sim::Bytes;

/// A granted region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    pub offset: u64,
    pub len: u64,
}

/// First-fit free-list allocator over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct SpaceAllocator {
    capacity: u64,
    /// Sorted, pairwise-disjoint, coalesced free runs.
    free: Vec<Region>,
    allocated: u64,
}

impl SpaceAllocator {
    pub fn new(capacity: Bytes) -> SpaceAllocator {
        SpaceAllocator {
            capacity: capacity.get(),
            free: if capacity.is_zero() {
                Vec::new()
            } else {
                vec![Region {
                    offset: 0,
                    len: capacity.get(),
                }]
            },
            allocated: 0,
        }
    }

    pub fn capacity(&self) -> Bytes {
        Bytes(self.capacity)
    }

    pub fn allocated(&self) -> Bytes {
        Bytes(self.allocated)
    }

    pub fn available(&self) -> Bytes {
        Bytes(self.capacity - self.allocated)
    }

    /// Largest single free run (what the largest admissible object is).
    pub fn largest_free_run(&self) -> Bytes {
        Bytes(self.free.iter().map(|r| r.len).max().unwrap_or(0))
    }

    /// First-fit allocation. Zero-length requests are rejected.
    pub fn alloc(&mut self, size: Bytes) -> Option<Region> {
        let need = size.get();
        if need == 0 {
            return None;
        }
        let idx = self.free.iter().position(|r| r.len >= need)?;
        let run = self.free[idx];
        let granted = Region {
            offset: run.offset,
            len: need,
        };
        if run.len == need {
            self.free.remove(idx);
        } else {
            self.free[idx] = Region {
                offset: run.offset + need,
                len: run.len - need,
            };
        }
        self.allocated += need;
        Some(granted)
    }

    /// Return a region. Panics on double free or out-of-range (both are
    /// runtime bugs, not recoverable conditions).
    pub fn free(&mut self, region: Region) {
        assert!(region.len > 0, "freeing empty region");
        assert!(
            region.offset + region.len <= self.capacity,
            "free out of range"
        );
        // Find insertion point keeping `free` sorted by offset.
        let pos = self.free.partition_point(|r| r.offset < region.offset);
        // Overlap checks against neighbours = double-free detection.
        if pos > 0 {
            let prev = self.free[pos - 1];
            assert!(
                prev.offset + prev.len <= region.offset,
                "double free / overlap with previous free run"
            );
        }
        if pos < self.free.len() {
            let next = self.free[pos];
            assert!(
                region.offset + region.len <= next.offset,
                "double free / overlap with next free run"
            );
        }
        self.free.insert(pos, region);
        self.allocated -= region.len;
        self.coalesce_around(pos);
    }

    fn coalesce_around(&mut self, pos: usize) {
        // Merge with next first so `pos` stays valid.
        if pos + 1 < self.free.len() {
            let (a, b) = (self.free[pos], self.free[pos + 1]);
            if a.offset + a.len == b.offset {
                self.free[pos] = Region {
                    offset: a.offset,
                    len: a.len + b.len,
                };
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (a, b) = (self.free[pos - 1], self.free[pos]);
            if a.offset + a.len == b.offset {
                self.free[pos - 1] = Region {
                    offset: a.offset,
                    len: a.len + b.len,
                };
                self.free.remove(pos);
            }
        }
    }

    /// Number of free runs (fragmentation indicator, used by tests).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_one_run() {
        let a = SpaceAllocator::new(Bytes(1000));
        assert_eq!(a.available(), Bytes(1000));
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.largest_free_run(), Bytes(1000));
    }

    #[test]
    fn alloc_free_roundtrip_restores_state() {
        let mut a = SpaceAllocator::new(Bytes(1000));
        let r = a.alloc(Bytes(300)).unwrap();
        assert_eq!(a.allocated(), Bytes(300));
        a.free(r);
        assert_eq!(a.allocated(), Bytes(0));
        assert_eq!(a.fragments(), 1);
        assert_eq!(a.largest_free_run(), Bytes(1000));
    }

    #[test]
    fn first_fit_order() {
        let mut a = SpaceAllocator::new(Bytes(100));
        let r1 = a.alloc(Bytes(40)).unwrap();
        let _r2 = a.alloc(Bytes(40)).unwrap();
        a.free(r1);
        // First fit places a 30-byte request in the hole at offset 0.
        let r3 = a.alloc(Bytes(30)).unwrap();
        assert_eq!(r3.offset, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = SpaceAllocator::new(Bytes(100));
        assert!(a.alloc(Bytes(100)).is_some());
        assert!(a.alloc(Bytes(1)).is_none());
    }

    #[test]
    fn fragmentation_blocks_large_alloc_but_coalescing_heals() {
        let mut a = SpaceAllocator::new(Bytes(100));
        let r1 = a.alloc(Bytes(25)).unwrap();
        let r2 = a.alloc(Bytes(25)).unwrap();
        let r3 = a.alloc(Bytes(25)).unwrap();
        let _r4 = a.alloc(Bytes(25)).unwrap();
        a.free(r1);
        a.free(r3);
        // 50 bytes free but split 25+25.
        assert_eq!(a.available(), Bytes(50));
        assert!(a.alloc(Bytes(50)).is_none());
        a.free(r2);
        // Now 75 contiguous at the front (r4 still allocated at the back).
        assert_eq!(a.fragments(), 1);
        assert!(a.alloc(Bytes(75)).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = SpaceAllocator::new(Bytes(100));
        let r = a.alloc(Bytes(10)).unwrap();
        a.free(r);
        a.free(r);
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        let mut a = SpaceAllocator::new(Bytes(100));
        assert!(a.alloc(Bytes(0)).is_none());
    }

    #[test]
    fn zero_capacity_allocator() {
        let mut a = SpaceAllocator::new(Bytes(0));
        assert!(a.alloc(Bytes(1)).is_none());
        assert_eq!(a.largest_free_run(), Bytes(0));
    }
}
