//! Rank→node placement and two-level collective timing.
//!
//! The communicator historically modeled one flat node: every collective
//! cost `collective_time(kind, nranks, bytes)` over the whole world. A
//! [`RankPlacement`] makes the node boundary explicit, and
//! [`collective_timing`] prices the two-level schedule the paper's
//! cluster runs would use — an intra-node phase per node (leader
//! election is implicit: the lowest rank on each node is its leader),
//! then an inter-node phase among leaders over the cluster link.
//!
//! The **data** path is unchanged by placement: reductions still fold
//! every contribution in global rank order at the root (see
//! [`crate::world::reduce`]), so hierarchical results are bitwise-equal
//! to the flat implementation for every `ReduceOp` — only *timing*
//! differs, and a single-node placement collapses exactly to the flat
//! formula. The execution driver charges the inter-node phase against
//! the per-node `LinkUp`/`LinkDown` ledger channels so link contention
//! composes with tier contention.

use crate::net::{CollectiveKind, NetParams};
use crate::world::{reduce, ReduceOp};
use unimem_sim::{Bytes, VDur, VTime};

/// Which node each rank lives on. Node ids are dense (`0..n_nodes`) and
/// placements are immutable once built, so timing derived from one is a
/// pure function of rank clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankPlacement {
    node_of: Vec<usize>,
    n_nodes: usize,
}

impl RankPlacement {
    /// All ranks on one node — the legacy flat world.
    pub fn single(nranks: usize) -> RankPlacement {
        assert!(nranks >= 1);
        RankPlacement {
            node_of: vec![0; nranks],
            n_nodes: 1,
        }
    }

    /// Contiguous blocks of `ranks_per_node` ranks per node (the last
    /// node may be short) — the same layout the shared-bandwidth model
    /// has always used for `ranks_per_node`.
    pub fn blocks(nranks: usize, ranks_per_node: usize) -> RankPlacement {
        assert!(nranks >= 1 && ranks_per_node >= 1);
        let node_of: Vec<usize> = (0..nranks).map(|r| r / ranks_per_node).collect();
        let n_nodes = nranks.div_ceil(ranks_per_node);
        RankPlacement { node_of, n_nodes }
    }

    /// Explicit placement: `node_of[r]` is rank `r`'s node. Node ids
    /// must be dense (every id in `0..max+1` occupied).
    pub fn from_node_of(node_of: Vec<usize>) -> RankPlacement {
        assert!(!node_of.is_empty());
        let n_nodes = node_of.iter().max().copied().unwrap_or(0) + 1;
        for node in 0..n_nodes {
            assert!(
                node_of.contains(&node),
                "node {node} has no ranks (ids must be dense)"
            );
        }
        RankPlacement { node_of, n_nodes }
    }

    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The node rank `rank` lives on.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Number of ranks on `node`.
    pub fn slots(&self, node: usize) -> usize {
        self.node_of.iter().filter(|&&n| n == node).count()
    }

    /// The node's leader: its lowest rank.
    pub fn leader(&self, node: usize) -> usize {
        self.node_of
            .iter()
            .position(|&n| n == node)
            .expect("dense node ids")
    }

    /// Whether two ranks share a node (their traffic never touches the
    /// inter-node link).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }

    /// A single-node placement prices collectives exactly like the flat
    /// world.
    pub fn is_flat(&self) -> bool {
        self.n_nodes == 1
    }
}

/// The timing decomposition of one two-level collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierTiming {
    /// When every node's intra-node phase has finished: the instant the
    /// inter-node phase starts. Equals `leave` on a flat placement.
    pub t_meet: VTime,
    /// Duration of the inter-node phase over the cluster link
    /// ([`VDur::ZERO`] on a flat placement).
    pub inter: VDur,
    /// Synchronized departure time (`t_meet + inter`), before any link
    /// contention penalty the caller may add.
    pub leave: VTime,
}

/// Price one collective over `clocks` (per-rank entry times, indexed by
/// rank) under `placement`.
///
/// * **Flat (1 node):** `leave = max(clocks) + intra.collective_time(kind,
///   nranks, bytes)` — bit-identical to the historical formula.
/// * **Multi-node:** each node finishes its intra-node phase at
///   `max(clocks on node) + intra.collective_time(kind, slots, bytes)`
///   (a node with one rank has no intra phase); the inter-node phase
///   starts when the slowest node is ready (`t_meet`) and costs
///   `link.collective_time(kind, n_nodes, bytes)` among the leaders.
///   The `collective_time` kind already prices both the up and down
///   legs for `Allreduce`, so the node-local term covers the leader's
///   rebroadcast too.
pub fn collective_timing(
    clocks: &[VTime],
    kind: CollectiveKind,
    bytes: Bytes,
    intra: &NetParams,
    placement: &RankPlacement,
    link: &NetParams,
) -> HierTiming {
    assert_eq!(clocks.len(), placement.nranks());
    if placement.is_flat() {
        let max_clock = clocks.iter().fold(VTime::ZERO, |acc, &c| acc.max(c));
        let leave = max_clock + intra.collective_time(kind, clocks.len(), bytes);
        return HierTiming {
            t_meet: leave,
            inter: VDur::ZERO,
            leave,
        };
    }
    let mut t_meet = VTime::ZERO;
    for node in 0..placement.n_nodes() {
        let mut node_max = VTime::ZERO;
        let mut slots = 0usize;
        for (rank, &c) in clocks.iter().enumerate() {
            if placement.node_of(rank) == node {
                node_max = node_max.max(c);
                slots += 1;
            }
        }
        let t_leader = if slots > 1 {
            node_max + intra.collective_time(kind, slots, bytes)
        } else {
            node_max
        };
        t_meet = t_meet.max(t_leader);
    }
    let inter = link.collective_time(kind, placement.n_nodes(), bytes);
    HierTiming {
        t_meet,
        inter,
        leave: t_meet + inter,
    }
}

/// Reduce per-rank contributions over the two-level schedule: each node's
/// leader gathers its node's contributions **losslessly** (no partial
/// fold), the root concatenates the leaders' batches back into global
/// rank order, and only then folds once via [`crate::world::reduce`].
///
/// Folding per node first would reassociate the floating-point sum
/// (`(a+b)+(c+d)` instead of `((a+b)+c)+d`) and break bitwise equality
/// with the flat reduction; gathering defers every arithmetic operation
/// to the root, which is how reproducible MPI reductions are actually
/// built. The return is therefore bitwise-identical to
/// `reduce(contrib, op, placement.nranks())` for every [`ReduceOp`].
pub fn hier_reduce(contrib: &[Vec<f64>], op: ReduceOp, placement: &RankPlacement) -> Vec<Vec<f64>> {
    assert_eq!(contrib.len(), placement.nranks());
    // Intra-node gather: leaders collect (rank, contribution) pairs.
    let mut gathered: Vec<Vec<(usize, &Vec<f64>)>> = vec![Vec::new(); placement.n_nodes()];
    for (rank, c) in contrib.iter().enumerate() {
        gathered[placement.node_of(rank)].push((rank, c));
    }
    // Inter-node gather at the root, reassembled into global rank order.
    let mut ordered: Vec<(usize, &Vec<f64>)> = gathered.into_iter().flatten().collect();
    ordered.sort_by_key(|&(rank, _)| rank);
    let full: Vec<Vec<f64>> = ordered.into_iter().map(|(_, c)| c.clone()).collect();
    // One fold, in rank order — the same arithmetic the flat path runs.
    reduce(&full, op, placement.nranks())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VTime {
        VTime(s)
    }

    #[test]
    fn single_placement_is_flat() {
        let p = RankPlacement::single(4);
        assert!(p.is_flat());
        assert_eq!(p.n_nodes(), 1);
        assert_eq!(p.slots(0), 4);
        assert_eq!(p.leader(0), 0);
        assert!(p.same_node(0, 3));
    }

    #[test]
    fn blocks_layout_matches_div_ceil() {
        let p = RankPlacement::blocks(6, 4);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
        assert_eq!(p.slots(0), 4);
        assert_eq!(p.slots(1), 2);
        assert_eq!(p.leader(1), 4);
        assert!(!p.same_node(3, 4));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_node_ids_rejected() {
        RankPlacement::from_node_of(vec![0, 2]);
    }

    #[test]
    fn flat_timing_matches_legacy_formula() {
        let net = NetParams::default();
        let clocks = [t(1.0), t(3.0), t(2.0), t(0.5)];
        let ht = collective_timing(
            &clocks,
            CollectiveKind::Allreduce,
            Bytes(1024),
            &net,
            &RankPlacement::single(4),
            &net,
        );
        let expect = t(3.0) + net.collective_time(CollectiveKind::Allreduce, 4, Bytes(1024));
        assert_eq!(ht.leave, expect);
        assert_eq!(ht.t_meet, expect);
        assert!(ht.inter.is_zero());
    }

    #[test]
    fn two_level_timing_decomposes() {
        let intra = NetParams::default();
        let link = NetParams::default();
        let clocks = [t(1.0), t(2.0), t(4.0), t(3.0)];
        let p = RankPlacement::blocks(4, 2);
        let ht = collective_timing(
            &clocks,
            CollectiveKind::Barrier,
            Bytes(0),
            &intra,
            &p,
            &link,
        );
        // Node 0 leader ready at 2.0 + intra(2), node 1 at 4.0 + intra(2).
        let intra_dur = intra.collective_time(CollectiveKind::Barrier, 2, Bytes(0));
        assert_eq!(ht.t_meet, t(4.0) + intra_dur);
        assert_eq!(
            ht.inter,
            link.collective_time(CollectiveKind::Barrier, 2, Bytes(0))
        );
        assert_eq!(ht.leave, ht.t_meet + ht.inter);
    }

    #[test]
    fn lone_rank_nodes_skip_the_intra_phase() {
        let net = NetParams::default();
        let clocks = [t(1.0), t(2.0)];
        let p = RankPlacement::blocks(2, 1);
        let ht = collective_timing(
            &clocks,
            CollectiveKind::Allreduce,
            Bytes(64),
            &net,
            &p,
            &net,
        );
        assert_eq!(ht.t_meet, t(2.0), "no intra phase on 1-rank nodes");
        assert_eq!(
            ht.inter,
            net.collective_time(CollectiveKind::Allreduce, 2, Bytes(64))
        );
    }

    #[test]
    fn hier_reduce_is_bitwise_equal_to_flat_for_every_op() {
        // Values chosen so reassociation WOULD change the sum: 1.0 + 1e-16
        // rounds back to 1.0, but (1e-16 + 1e-16) + 1.0 does not.
        let contrib = vec![
            vec![1.0, 0.25],
            vec![1e-16, 2.0],
            vec![1e-16, -0.5],
            vec![3.0, 1e-16],
            vec![-1.0, 4.0],
            vec![0.125, 1e-16],
        ];
        let ops = [
            ReduceOp::Sum,
            ReduceOp::Max,
            ReduceOp::TakeRoot(2),
            ReduceOp::AllToAll,
        ];
        // Every grouping of 6 ranks the blocks layout can produce.
        for slots in 1..=6 {
            let p = RankPlacement::blocks(6, slots);
            for op in ops {
                let flat = reduce(&contrib, op, 6);
                let hier = hier_reduce(&contrib, op, &p);
                for (f, h) in flat.iter().zip(&hier) {
                    let fb: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
                    let hb: Vec<u64> = h.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(fb, hb, "op {op:?} diverges at {slots} slots per node");
                }
            }
        }
    }

    #[test]
    fn hier_reduce_gathers_across_uneven_nodes() {
        // 3 ranks over 2 nodes (2 + 1): the lone-rank node contributes
        // directly to the root batch, in rank order.
        let contrib = vec![vec![1.0], vec![2.0], vec![4.0]];
        let p = RankPlacement::blocks(3, 2);
        let r = hier_reduce(&contrib, ReduceOp::Sum, &p);
        assert_eq!(r, vec![vec![7.0]; 3]);
    }
}
