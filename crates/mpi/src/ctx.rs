//! Per-rank context: the MPI-like API surface workloads and the Unimem
//! executor program against.
//!
//! Every operation advances this rank's virtual clock according to the
//! LogP-style rules in [`crate::net`] and appends a [`CommEvent`] record.
//! The executor drains those records to delineate phases exactly as the
//! paper's PMPI wrapper does.

use crate::net::CollectiveKind;
use crate::world::{CommWorld, Message, ReduceOp};
use std::sync::Arc;
use unimem_sim::{Bytes, VDur, VTime};

/// What kind of MPI call an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Send {
        to: usize,
        tag: u64,
    },
    Recv {
        from: usize,
        tag: u64,
    },
    /// Non-blocking post (merged into the following phase per §2.1).
    Isend {
        to: usize,
        tag: u64,
    },
    /// Completion of a non-blocking receive — a communication phase.
    Wait {
        from: usize,
        tag: u64,
    },
    Collective(CollectiveKind),
}

/// One completed communication call on this rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommEvent {
    pub op: OpKind,
    pub bytes: Bytes,
    pub begin: VTime,
    pub end: VTime,
}

/// Handle for a pending non-blocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Eager send: already complete.
    SendDone { to: usize, tag: u64 },
    /// Posted receive, completed by [`RankCtx::wait`].
    Recv { from: usize, tag: u64 },
}

/// A bare per-rank virtual clock, for drivers that resolve
/// communication centrally instead of through a live [`CommWorld`].
///
/// The pooled segmented executor runs rank code in host-scheduled
/// segments between communication points; inside a segment the rank
/// only needs `now`/`advance` (exactly the subset of [`RankCtx`] the
/// placement policies use), and at a communication point the driver
/// [`RankClock::set`]s the resolved departure time. Keeping this type
/// free of any shared handle makes a segment trivially `Send`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankClock {
    rank: usize,
    nranks: usize,
    clock: VTime,
}

impl RankClock {
    pub fn new(rank: usize, nranks: usize) -> RankClock {
        assert!(rank < nranks);
        RankClock {
            rank,
            nranks,
            clock: VTime::ZERO,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    pub fn now(&self) -> VTime {
        self.clock
    }

    /// Advance the local clock by computation time.
    pub fn advance(&mut self, d: VDur) {
        self.clock += d;
    }

    /// Jump the clock to a centrally resolved instant (a collective's
    /// synchronized departure, a halo's last arrival). Never moves the
    /// clock backwards.
    pub fn set(&mut self, t: VTime) {
        debug_assert!(t >= self.clock, "clock may not run backwards");
        self.clock = t;
    }
}

/// Per-rank state: virtual clock + communicator handle + event log.
pub struct RankCtx {
    rank: usize,
    world: Arc<CommWorld>,
    clock: VTime,
    events: Vec<CommEvent>,
}

impl RankCtx {
    pub(crate) fn new(rank: usize, world: Arc<CommWorld>) -> RankCtx {
        RankCtx {
            rank,
            world,
            clock: VTime::ZERO,
            events: Vec::new(),
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn nranks(&self) -> usize {
        self.world.nranks()
    }

    pub fn now(&self) -> VTime {
        self.clock
    }

    /// Advance the local clock by computation time (the executor charges
    /// ground-truth phase durations through this).
    pub fn advance(&mut self, d: VDur) {
        self.clock += d;
    }

    /// Drain the communication event log.
    pub fn take_events(&mut self) -> Vec<CommEvent> {
        std::mem::take(&mut self.events)
    }

    /// Blocking standard send of `payload` with a modeled size of `bytes`
    /// (synthetic workloads model multi-MB messages with small payloads).
    pub fn send(&mut self, to: usize, tag: u64, bytes: Bytes, payload: &[f64]) {
        let begin = self.clock;
        self.clock += self.world.net.overhead;
        let avail_at = self.clock + self.world.net.p2p_time(bytes);
        self.world.post(
            self.rank,
            to,
            Message {
                tag,
                modeled_bytes: bytes,
                payload: payload.to_vec(),
                avail_at,
            },
        );
        self.events.push(CommEvent {
            op: OpKind::Send { to, tag },
            bytes,
            begin,
            end: self.clock,
        });
    }

    /// Blocking receive; returns the payload and advances the clock to the
    /// message arrival.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        let begin = self.clock;
        let msg = self.world.fetch(from, self.rank, tag);
        self.clock = (self.clock + self.world.net.overhead).max(msg.avail_at);
        self.events.push(CommEvent {
            op: OpKind::Recv { from, tag },
            bytes: msg.modeled_bytes,
            begin,
            end: self.clock,
        });
        msg.payload
    }

    /// Non-blocking send: eager, completes immediately; charged only the
    /// software overhead (it merges into the next phase, per the paper).
    pub fn isend(&mut self, to: usize, tag: u64, bytes: Bytes, payload: &[f64]) -> Request {
        let begin = self.clock;
        self.clock += self.world.net.overhead;
        let avail_at = self.clock + self.world.net.p2p_time(bytes);
        self.world.post(
            self.rank,
            to,
            Message {
                tag,
                modeled_bytes: bytes,
                payload: payload.to_vec(),
                avail_at,
            },
        );
        self.events.push(CommEvent {
            op: OpKind::Isend { to, tag },
            bytes,
            begin,
            end: self.clock,
        });
        Request::SendDone { to, tag }
    }

    /// Post a non-blocking receive. No clock cost until [`Self::wait`].
    pub fn irecv(&mut self, from: usize, tag: u64) -> Request {
        Request::Recv { from, tag }
    }

    /// Complete a pending request (the paper's `MPI_Wait` — a communication
    /// phase in its own right).
    pub fn wait(&mut self, req: Request) -> Option<Vec<f64>> {
        match req {
            Request::SendDone { .. } => None,
            Request::Recv { from, tag } => {
                let begin = self.clock;
                let msg = self.world.fetch(from, self.rank, tag);
                self.clock = (self.clock + self.world.net.overhead).max(msg.avail_at);
                self.events.push(CommEvent {
                    op: OpKind::Wait { from, tag },
                    bytes: msg.modeled_bytes,
                    begin,
                    end: self.clock,
                });
                Some(msg.payload)
            }
        }
    }

    fn collective(
        &mut self,
        kind: CollectiveKind,
        bytes: Bytes,
        contrib: Vec<f64>,
        op: ReduceOp,
    ) -> Vec<f64> {
        let begin = self.clock;
        let (leave, data) = self
            .world
            .collective(self.rank, self.clock, kind, bytes, contrib, op);
        self.clock = leave;
        self.events.push(CommEvent {
            op: OpKind::Collective(kind),
            bytes,
            begin,
            end: self.clock,
        });
        data
    }

    /// Synchronize all ranks (clocks jump to the common departure time).
    pub fn barrier(&mut self) {
        let _ = self.collective(
            CollectiveKind::Barrier,
            Bytes::ZERO,
            Vec::new(),
            ReduceOp::Sum,
        );
    }

    /// Element-wise sum allreduce of `data`; result replaces `data`.
    pub fn allreduce_sum(&mut self, data: &mut Vec<f64>) {
        let bytes = Bytes((data.len() * 8) as u64);
        *data = self.collective(
            CollectiveKind::Allreduce,
            bytes,
            std::mem::take(data),
            ReduceOp::Sum,
        );
    }

    /// Scalar sum allreduce.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut v = vec![x];
        self.allreduce_sum(&mut v);
        v[0]
    }

    /// Scalar max allreduce.
    pub fn allreduce_max_scalar(&mut self, x: f64) -> f64 {
        self.collective(CollectiveKind::Allreduce, Bytes(8), vec![x], ReduceOp::Max)[0]
    }

    /// Broadcast `data` from `root` (replaces `data` on other ranks).
    pub fn bcast(&mut self, root: usize, data: &mut Vec<f64>) {
        let bytes = Bytes((data.len() * 8) as u64);
        let contrib = if self.rank == root {
            std::mem::take(data)
        } else {
            Vec::new()
        };
        *data = self.collective(
            CollectiveKind::Bcast,
            bytes,
            contrib,
            ReduceOp::TakeRoot(root),
        );
    }

    /// Personalized all-to-all: `blocks` must contain `nranks` equal blocks;
    /// returns the gathered blocks addressed to this rank, in rank order.
    /// `bytes` is the modeled per-pair message size.
    pub fn alltoall(&mut self, bytes: Bytes, blocks: Vec<f64>) -> Vec<f64> {
        assert!(
            blocks.len().is_multiple_of(self.nranks()),
            "alltoall payload must split into nranks blocks"
        );
        self.collective(CollectiveKind::Alltoall, bytes, blocks, ReduceOp::AllToAll)
    }

    /// Allreduce with a modeled payload size and no real data — synthetic
    /// workloads use this for clock effects only.
    pub fn allreduce_modeled(&mut self, bytes: Bytes) {
        let _ = self.collective(CollectiveKind::Allreduce, bytes, Vec::new(), ReduceOp::Sum);
    }

    /// Broadcast with a modeled payload size and no real data.
    pub fn bcast_modeled(&mut self, bytes: Bytes) {
        let _ = self.collective(
            CollectiveKind::Bcast,
            bytes,
            Vec::new(),
            ReduceOp::TakeRoot(0),
        );
    }

    /// All-to-all with a modeled per-pair size and no real data.
    pub fn alltoall_modeled(&mut self, bytes: Bytes) {
        let _ = self.collective(
            CollectiveKind::Alltoall,
            bytes,
            Vec::new(),
            ReduceOp::AllToAll,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetParams;

    fn run2<R: Send>(f: impl Fn(&mut RankCtx) -> R + Sync) -> Vec<R> {
        CommWorld::run(2, NetParams::default(), f)
    }

    #[test]
    fn send_recv_transfers_payload_and_time() {
        let out = run2(|ctx| {
            if ctx.rank() == 0 {
                ctx.advance(VDur::from_millis(5.0));
                ctx.send(1, 7, Bytes::mib(1), &[1.0, 2.0, 3.0]);
                ctx.now().secs()
            } else {
                let data = ctx.recv(0, 7);
                assert_eq!(data, vec![1.0, 2.0, 3.0]);
                ctx.now().secs()
            }
        });
        // Receiver clock ≥ sender departure + wire time for 1 MiB at 5 GB/s.
        assert!(out[1] > 0.005, "receiver at {}", out[1]);
        assert!(out[1] > out[0]);
    }

    #[test]
    fn recv_does_not_wait_for_late_messages_already_sent() {
        let out = run2(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Bytes(8), &[42.0]);
                0.0
            } else {
                // Receiver is "late" in virtual time: message already there.
                ctx.advance(VDur::from_secs(1.0));
                ctx.recv(0, 1);
                ctx.now().secs()
            }
        });
        assert!((out[1] - 1.0).abs() < 0.001, "clock={}", out[1]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run2(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Bytes(8), &[1.0]);
                ctx.send(1, 2, Bytes(8), &[2.0]);
                Vec::new()
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = ctx.recv(0, 2);
                let a = ctx.recv(0, 1);
                vec![b[0], a[0]]
            }
        });
        assert_eq!(out[1], vec![2.0, 1.0]);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let out = CommWorld::run(4, NetParams::default(), |ctx| {
            ctx.advance(VDur::from_millis(ctx.rank() as f64 * 10.0));
            ctx.barrier();
            ctx.now().secs()
        });
        // All leave together, at ≥ the slowest rank's 30 ms.
        assert!(out.iter().all(|&t| (t - out[0]).abs() < 1e-12));
        assert!(out[0] >= 0.030);
    }

    #[test]
    fn allreduce_sum_is_deterministic_and_correct() {
        let out = CommWorld::run(4, NetParams::default(), |ctx| {
            ctx.allreduce_sum_scalar((ctx.rank() + 1) as f64)
        });
        assert!(out.iter().all(|&x| x == 10.0));
    }

    #[test]
    fn allreduce_max() {
        let out = CommWorld::run(3, NetParams::default(), |ctx| {
            ctx.allreduce_max_scalar(ctx.rank() as f64)
        });
        assert!(out.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn bcast_from_root() {
        let out = CommWorld::run(3, NetParams::default(), |ctx| {
            let mut v = if ctx.rank() == 1 {
                vec![3.0, 4.0]
            } else {
                vec![0.0, 0.0]
            };
            ctx.bcast(1, &mut v);
            v
        });
        assert!(out.iter().all(|v| v == &[3.0, 4.0]));
    }

    #[test]
    fn alltoall_exchanges_blocks() {
        let out = run2(|ctx| {
            let r = ctx.rank() as f64;
            // Block for rank 0, block for rank 1.
            let blocks = vec![r * 10.0, r * 10.0 + 1.0];
            ctx.alltoall(Bytes(8), blocks)
        });
        assert_eq!(out[0], vec![0.0, 10.0]);
        assert_eq!(out[1], vec![1.0, 11.0]);
    }

    #[test]
    fn isend_wait_roundtrip() {
        let out = run2(|ctx| {
            if ctx.rank() == 0 {
                let req = ctx.isend(1, 9, Bytes::kib(4), &[5.0]);
                assert_eq!(ctx.wait(req), None);
                0.0
            } else {
                let req = ctx.irecv(0, 9);
                let data = ctx.wait(req).unwrap();
                data[0]
            }
        });
        assert_eq!(out[1], 5.0);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let out = run2(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, Bytes(8), &[0.0]);
            } else {
                ctx.recv(0, 1);
            }
            ctx.barrier();
            ctx.take_events()
        });
        assert_eq!(out[0].len(), 2);
        assert!(matches!(out[0][0].op, OpKind::Send { to: 1, tag: 1 }));
        assert!(matches!(
            out[0][1].op,
            OpKind::Collective(CollectiveKind::Barrier)
        ));
        assert!(out[0][1].begin >= out[0][0].end);
    }

    #[test]
    fn repeated_collectives_reuse_slot() {
        let out = CommWorld::run(3, NetParams::default(), |ctx| {
            let mut acc = 0.0;
            for i in 0..50 {
                acc += ctx.allreduce_sum_scalar(i as f64);
            }
            acc
        });
        let expect: f64 = (0..50).map(|i| (i * 3) as f64).sum();
        assert!(out.iter().all(|&x| (x - expect).abs() < 1e-9));
    }

    #[test]
    fn virtual_time_is_schedule_independent() {
        let run = || {
            CommWorld::run(4, NetParams::default(), |ctx| {
                for _ in 0..20 {
                    ctx.advance(VDur::from_micros((ctx.rank() * 13 + 1) as f64));
                    let _ = ctx.allreduce_sum_scalar(1.0);
                }
                ctx.now().secs()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual clocks must not depend on host scheduling");
    }
}
