//! Transparent phase identification (the paper's PMPI wrapper).
//!
//! "Based on PMPI, we can transparently identify execution phases and
//! control profiling without programmer intervention. … The wrapper … uses
//! a global counter to identify phases." (§3.3)
//!
//! [`PhaseTracker`] is that counter. The executor calls it while replaying
//! a rank's step stream: computation between two MPI calls is one phase,
//! each blocking MPI call (or `MPI_Wait`) is a communication phase, and a
//! non-blocking post (`MPI_Isend`/`MPI_Irecv`) is *not* a phase — it merges
//! into the phase that follows (§2.1). Because iterative applications
//! repeat the same call sequence, the counter resets at `unimem_start`'s
//! loop head and phase *k* of every iteration denotes the same program
//! region.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a program phase within the main loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaseId(pub u32);

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase{}", self.0)
    }
}

/// Whether a phase is computation or communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseKind {
    Compute,
    Comm,
}

/// The per-rank phase counter.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseTracker {
    next: u32,
    iteration: u64,
    /// Phase count of the first completed iteration; later iterations must
    /// match (the iterative-structure assumption of §2.1), checked in
    /// debug builds.
    first_iter_phases: Option<u32>,
}

impl PhaseTracker {
    pub fn new() -> PhaseTracker {
        PhaseTracker::default()
    }

    /// Mark the head of the main computation loop (`unimem_start` /
    /// top of each iteration). Resets the counter.
    pub fn begin_iteration(&mut self) {
        if self.iteration > 0 {
            match self.first_iter_phases {
                None => self.first_iter_phases = Some(self.next),
                Some(n) => {
                    debug_assert_eq!(n, self.next, "phase structure changed between iterations")
                }
            }
        }
        self.next = 0;
        self.iteration += 1;
    }

    /// Current iteration number (1-based once the loop started).
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Number of phases per iteration, known after the first iteration.
    pub fn phases_per_iteration(&self) -> Option<u32> {
        self.first_iter_phases.or({
            if self.iteration > 1 {
                Some(self.next)
            } else {
                None
            }
        })
    }

    /// Allocate the id for the phase now beginning.
    pub fn next_phase(&mut self) -> PhaseId {
        let id = PhaseId(self.next);
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_count_up_within_iteration() {
        let mut t = PhaseTracker::new();
        t.begin_iteration();
        assert_eq!(t.next_phase(), PhaseId(0));
        assert_eq!(t.next_phase(), PhaseId(1));
        assert_eq!(t.next_phase(), PhaseId(2));
    }

    #[test]
    fn ids_repeat_across_iterations() {
        let mut t = PhaseTracker::new();
        t.begin_iteration();
        let a0 = t.next_phase();
        let _a1 = t.next_phase();
        t.begin_iteration();
        let b0 = t.next_phase();
        assert_eq!(a0, b0);
        assert_eq!(t.iteration(), 2);
    }

    #[test]
    fn phase_count_known_after_first_iteration() {
        let mut t = PhaseTracker::new();
        t.begin_iteration();
        t.next_phase();
        t.next_phase();
        assert_eq!(t.phases_per_iteration(), None);
        t.begin_iteration();
        assert_eq!(t.phases_per_iteration(), Some(2));
    }

    #[test]
    #[should_panic(expected = "phase structure changed")]
    #[cfg(debug_assertions)]
    fn varying_structure_is_caught() {
        let mut t = PhaseTracker::new();
        t.begin_iteration();
        t.next_phase();
        t.begin_iteration();
        t.next_phase();
        t.next_phase();
        t.begin_iteration();
    }
}
