//! Shared communication state and the rank launcher.
//!
//! [`CommWorld`] owns the per-pair mailboxes and the collective slot. Rank
//! threads interact with it through [`crate::ctx::RankCtx`]. All blocking is
//! real (condvars) but all *timing* is virtual and deterministic.

use crate::net::{CollectiveKind, NetParams};
use crate::topo::{collective_timing, RankPlacement};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use unimem_sim::{Bytes, VTime};

/// Reduction semantics for collectives carrying data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum in rank order (bit-deterministic).
    Sum,
    /// Element-wise max.
    Max,
    /// Result is the root's contribution (broadcast).
    TakeRoot(usize),
    /// Personalized exchange: contribution of rank r is `p` equal blocks;
    /// result for rank r is block r of every rank, in rank order.
    AllToAll,
}

/// A point-to-point message in flight.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    pub tag: u64,
    pub modeled_bytes: Bytes,
    pub payload: Vec<f64>,
    /// Virtual time at which the message is available at the receiver.
    pub avail_at: VTime,
}

#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    cv: Condvar,
}

#[derive(Debug, Clone)]
struct CollResult {
    leave_at: VTime,
    /// Per-rank result payloads (same for all ranks except AllToAll).
    data: Vec<Vec<f64>>,
}

struct CollSlot {
    gen: u64,
    arrived: usize,
    clocks: Vec<VTime>,
    contrib: Vec<Vec<f64>>,
    /// Finished generations awaiting pickup: gen -> (result, reads left).
    results: HashMap<u64, (CollResult, usize)>,
}

struct Collective {
    m: Mutex<CollSlot>,
    cv: Condvar,
}

/// The communicator: everything ranks share.
pub struct CommWorld {
    nranks: usize,
    pub(crate) net: NetParams,
    /// Rank→node placement; [`RankPlacement::single`] (the default)
    /// reproduces the historical flat collective timing exactly.
    placement: RankPlacement,
    /// Inter-node link parameters for the two-level collective phase.
    /// Unused on a flat placement.
    link: NetParams,
    mailboxes: Vec<Mailbox>,
    coll: Collective,
}

impl CommWorld {
    pub fn new(nranks: usize, net: NetParams) -> CommWorld {
        CommWorld::with_topology(nranks, net, RankPlacement::single(nranks), net)
    }

    /// A communicator whose collectives are priced by the two-level
    /// schedule of [`collective_timing`] under `placement`, with the
    /// inter-node phase running over `link`. Reduction *data* is
    /// placement-independent (see [`reduce`]).
    pub fn with_topology(
        nranks: usize,
        net: NetParams,
        placement: RankPlacement,
        link: NetParams,
    ) -> CommWorld {
        assert!(nranks >= 1);
        assert_eq!(placement.nranks(), nranks);
        CommWorld {
            nranks,
            net,
            placement,
            link,
            mailboxes: (0..nranks * nranks).map(|_| Mailbox::default()).collect(),
            coll: Collective {
                m: Mutex::new(CollSlot {
                    gen: 0,
                    arrived: 0,
                    clocks: vec![VTime::ZERO; nranks],
                    contrib: vec![Vec::new(); nranks],
                    results: HashMap::new(),
                }),
                cv: Condvar::new(),
            },
        }
    }

    /// The rank→node placement collectives are priced under.
    pub fn placement(&self) -> &RankPlacement {
        &self.placement
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    fn mailbox(&self, src: usize, dst: usize) -> &Mailbox {
        &self.mailboxes[src * self.nranks + dst]
    }

    /// Deposit a message from `src` to `dst`.
    pub(crate) fn post(&self, src: usize, dst: usize, msg: Message) {
        let mb = self.mailbox(src, dst);
        mb.queue.lock().push_back(msg);
        mb.cv.notify_all();
    }

    /// Block until a message from `src` to `dst` with `tag` arrives; remove
    /// and return it. MPI non-overtaking order holds per (src, tag).
    pub(crate) fn fetch(&self, src: usize, dst: usize, tag: u64) -> Message {
        let mb = self.mailbox(src, dst);
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|m| m.tag == tag) {
                return q.remove(pos).expect("position valid");
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Enter a collective: blocks until all ranks arrive, then returns the
    /// synchronized departure time and this rank's result payload.
    pub(crate) fn collective(
        &self,
        rank: usize,
        clock: VTime,
        kind: CollectiveKind,
        bytes: Bytes,
        contrib: Vec<f64>,
        op: ReduceOp,
    ) -> (VTime, Vec<f64>) {
        let mut slot = self.coll.m.lock();
        let my_gen = slot.gen;
        slot.clocks[rank] = clock;
        slot.contrib[rank] = contrib;
        slot.arrived += 1;
        if slot.arrived == self.nranks {
            // Last arrival computes the result for this generation.
            let leave_at = collective_timing(
                &slot.clocks,
                kind,
                bytes,
                &self.net,
                &self.placement,
                &self.link,
            )
            .leave;
            let data = reduce(&slot.contrib, op, self.nranks);
            slot.results
                .insert(my_gen, (CollResult { leave_at, data }, self.nranks));
            slot.arrived = 0;
            slot.gen += 1;
            for c in &mut slot.contrib {
                c.clear();
            }
            self.coll.cv.notify_all();
        } else {
            while !slot.results.contains_key(&my_gen) {
                self.coll.cv.wait(&mut slot);
            }
        }
        let (result, remaining) = slot.results.get_mut(&my_gen).expect("result present");
        let leave = result.leave_at;
        let mine = std::mem::take(&mut result.data[rank]);
        *remaining -= 1;
        if *remaining == 0 {
            slot.results.remove(&my_gen);
        }
        (leave, mine)
    }

    /// Launch `nranks` rank threads running `f` and collect their results
    /// in rank order. Panics in any rank propagate.
    pub fn run<R, F>(nranks: usize, net: NetParams, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut crate::ctx::RankCtx) -> R + Sync,
    {
        CommWorld::run_world(CommWorld::new(nranks, net), f)
    }

    /// [`CommWorld::run`] over an explicitly constructed world (e.g. one
    /// with a multi-node [`RankPlacement`]).
    pub fn run_world<R, F>(world: CommWorld, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut crate::ctx::RankCtx) -> R + Sync,
    {
        let nranks = world.nranks;
        let world = Arc::new(world);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let world = Arc::clone(&world);
                    let f = &f;
                    scope.spawn(move || {
                        let mut ctx = crate::ctx::RankCtx::new(rank, world);
                        f(&mut ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// Reduce contributions (indexed by rank) under `op`, producing the
/// per-rank result payloads. Always iterates in rank order:
/// deterministic, and deliberately **placement-independent** — the
/// hierarchical schedule only changes *when* ranks leave, never what
/// they receive, so two-level results are bitwise-equal to flat ones
/// for every op (f64 addition is non-associative; folding per-node
/// partial sums would break that).
pub fn reduce(contrib: &[Vec<f64>], op: ReduceOp, nranks: usize) -> Vec<Vec<f64>> {
    match op {
        ReduceOp::Sum | ReduceOp::Max => {
            let len = contrib.iter().map(|c| c.len()).max().unwrap_or(0);
            let mut acc = vec![
                match op {
                    ReduceOp::Sum => 0.0,
                    _ => f64::NEG_INFINITY,
                };
                len
            ];
            for c in contrib {
                for (i, &x) in c.iter().enumerate() {
                    match op {
                        ReduceOp::Sum => acc[i] += x,
                        ReduceOp::Max => acc[i] = acc[i].max(x),
                        _ => unreachable!(),
                    }
                }
            }
            if len == 0 {
                vec![Vec::new(); nranks]
            } else {
                vec![acc; nranks]
            }
        }
        ReduceOp::TakeRoot(root) => {
            vec![contrib[root].clone(); nranks]
        }
        ReduceOp::AllToAll => {
            // Split each contribution into nranks equal blocks.
            (0..nranks)
                .map(|dst| {
                    let mut out = Vec::new();
                    for src_contrib in contrib {
                        if src_contrib.is_empty() {
                            continue;
                        }
                        let block = src_contrib.len() / nranks;
                        out.extend_from_slice(&src_contrib[dst * block..(dst + 1) * block]);
                    }
                    out
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_is_rank_ordered() {
        let c = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        let r = reduce(&c, ReduceOp::Sum, 3);
        assert_eq!(r[0], vec![111.0, 222.0]);
        assert_eq!(r[2], r[0]);
    }

    #[test]
    fn reduce_max() {
        let c = vec![vec![1.0], vec![5.0], vec![3.0]];
        let r = reduce(&c, ReduceOp::Max, 3);
        assert_eq!(r[1], vec![5.0]);
    }

    #[test]
    fn take_root_broadcasts() {
        let c = vec![vec![], vec![7.0, 8.0], vec![]];
        let r = reduce(&c, ReduceOp::TakeRoot(1), 3);
        assert_eq!(r[0], vec![7.0, 8.0]);
        assert_eq!(r[2], vec![7.0, 8.0]);
    }

    #[test]
    fn alltoall_transposes_blocks() {
        // Rank r contributes [r*10+0, r*10+1] (block per destination).
        let c = vec![vec![0.0, 1.0], vec![10.0, 11.0]];
        let r = reduce(&c, ReduceOp::AllToAll, 2);
        assert_eq!(r[0], vec![0.0, 10.0]);
        assert_eq!(r[1], vec![1.0, 11.0]);
    }

    #[test]
    fn empty_barrier_reduction() {
        let c = vec![vec![], vec![]];
        let r = reduce(&c, ReduceOp::Sum, 2);
        assert!(r[0].is_empty() && r[1].is_empty());
    }
}
