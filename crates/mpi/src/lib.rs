//! Mini message-passing runtime with virtual clocks.
//!
//! The paper targets MPI programs on a small cluster. This crate provides
//! the substrate the reproduction runs on: every rank is an OS thread with
//! its own **virtual clock**; point-to-point messages and collectives carry
//! and synchronize those clocks so the simulated timeline is exactly what a
//! bulk-synchronous MPI job would see, independent of host scheduling:
//!
//! * `send`/`recv` — receiver time is
//!   `max(local, sender_departure + wire_time)`;
//! * collectives — everyone leaves at `max(entry clocks) + collective cost`
//!   (log-tree latency plus a size-dependent term);
//! * reductions are performed in rank order after all contributions arrive,
//!   so floating-point results are bit-deterministic.
//!
//! [`pmpi`] implements the paper's transparent phase identification: a
//! wrapper counts MPI operations per iteration (the "global counter" of
//! §3.3), merging non-blocking posts into the following phase exactly as
//! the paper prescribes.

pub mod ctx;
pub mod net;
pub mod pmpi;
pub mod topo;
pub mod world;

pub use ctx::{RankClock, RankCtx, Request};
pub use net::{CollectiveKind, NetParams};
pub use pmpi::{PhaseId, PhaseKind, PhaseTracker};
pub use topo::{collective_timing, hier_reduce, HierTiming, RankPlacement};
pub use world::{reduce, CommWorld, ReduceOp};
