//! Interconnect timing parameters and collective cost models.
//!
//! Standard LogP-flavoured costs: a point-to-point message of `n` bytes
//! takes `alpha + n/beta`; a collective over `p` ranks costs
//! `ceil(log2 p) · alpha` plus a size term depending on its shape. Values
//! default to a modest FDR-class cluster network (Platform A is a small
//! Ethernet/IB cluster; only relative magnitudes matter for the figures).

use serde::{Deserialize, Serialize};
use unimem_sim::{Bandwidth, Bytes, VDur};

/// Collective operation shapes with distinct cost structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    Barrier,
    /// Reduce + broadcast of `n` bytes.
    Allreduce,
    Bcast,
    Reduce,
    /// Personalized all-to-all exchange of `n` bytes per pair.
    Alltoall,
}

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// Per-message latency.
    pub alpha: VDur,
    /// Link bandwidth.
    pub beta: Bandwidth,
    /// Software overhead charged on the sender/receiver per call.
    pub overhead: VDur,
}

impl Default for NetParams {
    fn default() -> NetParams {
        NetParams {
            alpha: VDur::from_micros(2.0),
            beta: Bandwidth::gb_per_s(5.0),
            overhead: VDur::from_nanos(400.0),
        }
    }
}

impl NetParams {
    /// Wire time of a point-to-point message.
    pub fn p2p_time(&self, bytes: Bytes) -> VDur {
        self.alpha + bytes / self.beta
    }

    /// Cost of a collective over `p` ranks moving `bytes` per rank.
    pub fn collective_time(&self, kind: CollectiveKind, p: usize, bytes: Bytes) -> VDur {
        let log_p = (p.max(1) as f64).log2().ceil().max(1.0);
        let latency = self.alpha * log_p;
        match kind {
            CollectiveKind::Barrier => latency,
            CollectiveKind::Allreduce => latency * 2.0 + (bytes / self.beta) * 2.0,
            CollectiveKind::Bcast | CollectiveKind::Reduce => latency + bytes / self.beta,
            CollectiveKind::Alltoall => {
                // p-1 pairwise exchanges of `bytes` each.
                latency + (bytes / self.beta) * ((p.saturating_sub(1)) as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_cost_has_latency_and_bandwidth_terms() {
        let n = NetParams::default();
        let small = n.p2p_time(Bytes(8));
        let big = n.p2p_time(Bytes::mib(10));
        assert!(small.secs() >= n.alpha.secs());
        // 10 MiB at 5 GB/s ≈ 2.1 ms ≫ alpha.
        assert!(big.secs() > 2e-3);
    }

    #[test]
    fn collective_scales_logarithmically() {
        let n = NetParams::default();
        let b4 = n.collective_time(CollectiveKind::Barrier, 4, Bytes::ZERO);
        let b16 = n.collective_time(CollectiveKind::Barrier, 16, Bytes::ZERO);
        assert!((b16.secs() / b4.secs() - 2.0).abs() < 1e-9); // log 16 / log 4
    }

    #[test]
    fn allreduce_costs_more_than_bcast() {
        let n = NetParams::default();
        let bytes = Bytes::kib(64);
        assert!(
            n.collective_time(CollectiveKind::Allreduce, 8, bytes)
                > n.collective_time(CollectiveKind::Bcast, 8, bytes)
        );
    }

    #[test]
    fn alltoall_grows_with_ranks() {
        let n = NetParams::default();
        let bytes = Bytes::mib(1);
        let a4 = n.collective_time(CollectiveKind::Alltoall, 4, bytes);
        let a8 = n.collective_time(CollectiveKind::Alltoall, 8, bytes);
        assert!(a8 > a4);
    }

    #[test]
    fn single_rank_collective_is_cheap_but_positive() {
        let n = NetParams::default();
        let t = n.collective_time(CollectiveKind::Barrier, 1, Bytes::ZERO);
        assert!(t > VDur::ZERO);
    }
}
