//! Co-run composer: pair/triple tenant mixes of the suite with staggered
//! phase clocks.
//!
//! A *mix* names which suite members run concurrently on one node, who
//! carries the priority weight, and how the tenants' main loops are
//! staggered in the global epoch timeline. The first member of every mix
//! is the **weighted-priority tenant** ([`PRIORITY_WEIGHT`]); the rest
//! are weight-1 best-effort tenants — that asymmetry is what the sweep's
//! tenant-QoS conformance check measures. Members after the first start
//! [`STAGGER_STRIDE`] epochs apart, so every co-run exercises arrival
//! (budget revoked from incumbents) and departure (budget returned)
//! rebalances, not just a static split.
//!
//! Mixes are parsed from `+`-separated suite names (`"CG+FT"`,
//! `"LU+SP+CG"`), with the same alias handling as the rest of the suite;
//! duplicate members are legal (a homogeneous `"CG+CG"` pair isolates
//! arbitration effects from workload asymmetry) and get `#k`-suffixed
//! tenant names.
//!
//! # Example — compose a mix and run it under the arbiter
//!
//! ```
//! use unimem::tenancy::{run_corun, CorunTenant};
//! use unimem_cache::CacheModel;
//! use unimem_hms::arbiter::ArbiterPolicy;
//! use unimem_hms::MachineConfig;
//! use unimem_sim::Bytes;
//! use unimem_workloads::{corun::CorunMix, Class};
//!
//! let mix = CorunMix::parse("CG+MG").unwrap();
//! let members = mix.instantiate(Class::S); // miniature inputs: milliseconds
//! let tenants: Vec<CorunTenant<'_>> = members
//!     .iter()
//!     .map(|(slot, w)| {
//!         CorunTenant::new(slot.tenant.clone(), w.as_ref())
//!             .weight(slot.weight)
//!             .start_epoch(slot.start_epoch)
//!     })
//!     .collect();
//! let machine = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(2));
//! let outcomes = run_corun(
//!     &tenants, &machine, &CacheModel::platform_a(), 1, ArbiterPolicy::Priority,
//! )
//! .unwrap();
//! assert_eq!(outcomes.len(), 2);
//! // No tenant beats its solo run, and leases never exceed the node.
//! assert!(outcomes.iter().all(|o| o.slowdown >= 0.98));
//! assert!(outcomes.iter().all(|o| o.lease_max() <= Bytes::mib(2)));
//! ```
//!
//! (The tenant-QoS property — the weighted tenant never degrades more
//! than its best-effort peers — is asserted at CLASS C scale by the
//! sweep's `tenant-qos` conformance check, where contention is real;
//! at CLASS S the arrays fit the LLC and every policy ties.)

use crate::classes::Class;
use crate::suite::{by_name, canonical_name};
use unimem::exec::Workload;

/// Priority weight of a mix's first member (the protected tenant).
pub const PRIORITY_WEIGHT: u32 = 4;

/// Epochs between consecutive members' main-loop starts.
pub const STAGGER_STRIDE: usize = 2;

/// One tenant slot of a mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorunMember {
    /// Canonical suite name ("CG", …, "Nek5000").
    pub workload: String,
    /// Unique tenant name within the mix ("CG", "CG#2", …).
    pub tenant: String,
    /// Arbitration priority weight (first member gets
    /// [`PRIORITY_WEIGHT`], the rest 1).
    pub weight: u32,
    /// Epoch at which this tenant's main loop starts.
    pub start_epoch: usize,
}

/// A named co-run composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorunMix {
    /// The tenant slots, in priority-then-arrival order.
    pub members: Vec<CorunMember>,
}

impl CorunMix {
    /// Parse a `+`-separated mix spec (`"CG+FT"`, `"nek+mg"`). Names
    /// canonicalize through the suite alias table; unknown names are
    /// errors. The first member gets the priority weight, later members
    /// stagger their starts.
    pub fn parse(spec: &str) -> Result<CorunMix, String> {
        let names: Vec<&str> = spec.split('+').map(str::trim).collect();
        if names.len() < 2 {
            return Err(format!(
                "co-run mix {spec:?} needs at least two '+'-separated members"
            ));
        }
        let mut members: Vec<CorunMember> = Vec::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let canon = canonical_name(n)
                .ok_or_else(|| format!("unknown workload {n:?} in mix {spec:?}"))?;
            let dup = members.iter().filter(|m| m.workload == canon).count();
            let tenant = if dup == 0 {
                canon.to_string()
            } else {
                format!("{canon}#{}", dup + 1)
            };
            members.push(CorunMember {
                workload: canon.to_string(),
                tenant,
                weight: if i == 0 { PRIORITY_WEIGHT } else { 1 },
                start_epoch: i * STAGGER_STRIDE,
            });
        }
        Ok(CorunMix { members })
    }

    /// Canonical `+`-joined label ("CG+FT"), stable across aliases.
    pub fn label(&self) -> String {
        self.members
            .iter()
            .map(|m| m.workload.as_str())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Materialize the member workloads at `class`, paired with their
    /// slots (the slot order is the arbiter registration order).
    pub fn instantiate(&self, class: Class) -> Vec<(CorunMember, Box<dyn Workload>)> {
        self.members
            .iter()
            .map(|m| {
                let w = by_name(&m.workload, class).expect("canonical names resolve");
                (m.clone(), w)
            })
            .collect()
    }
}

/// The reduced co-run axis (tier-1 and the default CLI): one
/// heterogeneous pair whose members *both* demand more DRAM than a
/// fair share of the node — the arbitration policies actually diverge.
/// (CG is deliberately absent: its CLASS C footprint at 4 ranks fits
/// under half a node, so every policy would grant it identically.)
pub fn reduced_mixes() -> Vec<CorunMix> {
    parse_mixes(&["LU+MG"]).expect("built-in mixes parse")
}

/// The full co-run axis: the reduced pair, a drift-heavy pair (Nek5000's
/// shifting hot set under a moving lease), and a fully-contended triple.
pub fn standard_mixes() -> Vec<CorunMix> {
    parse_mixes(&["LU+MG", "Nek5000+SP", "FT+BT+MG"]).expect("built-in mixes parse")
}

/// Parse a list of mix specs, collapsing duplicates (first wins).
pub fn parse_mixes(specs: &[&str]) -> Result<Vec<CorunMix>, String> {
    let mixes = specs
        .iter()
        .map(|s| CorunMix::parse(s))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(dedup_mixes(mixes))
}

/// Collapse duplicate mixes by label, first occurrence wins — the one
/// dedup rule every mix consumer (CLI parsing, sweep-config
/// normalization) shares.
pub fn dedup_mixes(mixes: Vec<CorunMix>) -> Vec<CorunMix> {
    let mut out: Vec<CorunMix> = Vec::with_capacity(mixes.len());
    for mix in mixes {
        if !out.iter().any(|have| have.label() == mix.label()) {
            out.push(mix);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_canonicalizes_and_staggers() {
        let mix = CorunMix::parse("cg + nek").unwrap();
        assert_eq!(mix.label(), "CG+Nek5000");
        assert_eq!(mix.members[0].weight, PRIORITY_WEIGHT);
        assert_eq!(mix.members[1].weight, 1);
        assert_eq!(mix.members[0].start_epoch, 0);
        assert_eq!(mix.members[1].start_epoch, STAGGER_STRIDE);
    }

    #[test]
    fn homogeneous_pairs_get_unique_tenant_names() {
        let mix = CorunMix::parse("CG+CG+CG").unwrap();
        let names: Vec<&str> = mix.members.iter().map(|m| m.tenant.as_str()).collect();
        assert_eq!(names, ["CG", "CG#2", "CG#3"]);
    }

    #[test]
    fn bad_specs_are_errors() {
        assert!(CorunMix::parse("CG").is_err(), "singletons are not co-runs");
        assert!(CorunMix::parse("CG+EP").unwrap_err().contains("EP"));
    }

    #[test]
    fn built_in_mixes_instantiate() {
        for mix in standard_mixes().iter().chain(&reduced_mixes()) {
            let tenants = mix.instantiate(Class::S);
            assert_eq!(tenants.len(), mix.members.len());
            for (m, w) in &tenants {
                assert!(!m.tenant.is_empty() && !w.name().is_empty());
                assert!(w.iterations() >= 1);
            }
        }
    }

    #[test]
    fn duplicate_mixes_collapse() {
        let mixes = parse_mixes(&["CG+FT", "cg+ft", "FT+CG"]).unwrap();
        assert_eq!(mixes.len(), 2, "CG+FT and FT+CG differ; cg+ft does not");
    }
}
