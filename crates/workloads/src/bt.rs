//! BT — block-tridiagonal ADI solver (NPB).
//!
//! Table 3 lists fifteen target objects (99% of the footprint). The ADI
//! structure sweeps three directions per step, each through its own block
//! system (`lhsa`/`lhsb`/`lhsc` with the `fjac`/`njac` work arrays): the
//! working set *rotates* across phases, which is exactly where phase-local
//! search beats a single global placement (Fig. 11: +19% for BT).

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{chase, stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

pub const U: u32 = 0;
pub const RHS: u32 = 1;
pub const FORCING: u32 = 2;
pub const US: u32 = 3;
pub const VS: u32 = 4;
pub const WS: u32 = 5;
pub const QS: u32 = 6;
pub const RHO_I: u32 = 7;
pub const SQUARE: u32 = 8;
pub const FJAC: u32 = 9;
pub const NJAC: u32 = 10;
pub const LHSA: u32 = 11;
pub const LHSB: u32 = 12;
pub const LHSC: u32 = 13;
pub const BUFFERS: u32 = 14;

/// CLASS C totals.
const GRID5_C: u64 = 170 << 20; // 162³ × 5 components × 8 B
const GRID1_C: u64 = 34 << 20; // 162³ × 8 B
const JAC_C: u64 = 60 << 20;
const LHS_C: u64 = 150 << 20; // 5×5 blocks, one direction
const BUF_C: u64 = 32 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Bt {
    pub class: Class,
}

impl Bt {
    pub fn new(class: Class) -> Bt {
        Bt { class }
    }

    /// One directional solve: factor the blocks (streaming the jacobians
    /// and the direction's lhs) and back-substitute (a dependent
    /// recurrence along the lines, carried by rhs).
    fn solve(&self, lhs: u32, nranks: usize, label: &'static str) -> StepSpec {
        let lhs_b = scaled_bytes(LHS_C, self.class, nranks);
        let jac = scaled_bytes(JAC_C, self.class, nranks);
        let grid5 = scaled_bytes(GRID5_C, self.class, nranks);
        StepSpec::Compute(ComputeSpec {
            label,
            cpu: VDur::from_millis(grid5 as f64 / 8.0 / 2.5e7),
            accesses: vec![
                // Factor + forward + back-substitution: several passes
                // over this direction's blocks.
                stream_rw(lhs, lhs_b, 2.5, 0.45),
                stream(FJAC, jac, 0.3),
                stream(NJAC, jac, 0.3),
                stream_rw(RHS, grid5, 1.0, 0.5),
                // Back-substitution chains along each pencil.
                chase(RHS, grid5, grid5 / 8 / 24),
            ],
        })
    }
}

impl Workload for Bt {
    fn name(&self) -> String {
        format!("BT.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let it = self.class.iterations() as f64;
        let grid5 = s(GRID5_C);
        let grid1 = s(GRID1_C);
        let mut objs = vec![
            ObjectSpec::new("u", Bytes(grid5)).est_refs(it * 2.0 * grid5 as f64 / 8.0),
            ObjectSpec::new("rhs", Bytes(grid5)).est_refs(it * 5.0 * grid5 as f64 / 8.0),
            ObjectSpec::new("forcing", Bytes(grid5)).est_refs(it * grid5 as f64 / 8.0),
        ];
        for name in ["us", "vs", "ws", "qs", "rho_i", "square"] {
            objs.push(ObjectSpec::new(name, Bytes(grid1)).est_refs(it * grid1 as f64 / 8.0));
        }
        objs.push(ObjectSpec::new("fjac", Bytes(s(JAC_C))).est_refs(it * s(JAC_C) as f64 / 2.0));
        objs.push(ObjectSpec::new("njac", Bytes(s(JAC_C))).est_refs(it * s(JAC_C) as f64 / 2.0));
        for name in ["lhsa", "lhsb", "lhsc"] {
            objs.push(
                ObjectSpec::new(name, Bytes(s(LHS_C)))
                    .partitionable(true)
                    .est_refs(it * s(LHS_C) as f64 / 8.0),
            );
        }
        objs.push(ObjectSpec::new("buffers", Bytes(s(BUF_C))).est_refs(it * s(BUF_C) as f64 / 4.0));
        objs
    }

    fn script(&self, rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let grid5 = s(GRID5_C);
        let grid1 = s(GRID1_C);
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;
        vec![
            StepSpec::Compute(ComputeSpec {
                label: "compute_rhs",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 3e7),
                accesses: vec![
                    stream(U, grid5, 1.0),
                    stream_rw(RHS, grid5, 1.0, 0.3),
                    stream(FORCING, grid5, 1.0),
                    stream(US, grid1, 1.0),
                    stream(VS, grid1, 1.0),
                    stream(WS, grid1, 1.0),
                    stream(QS, grid1, 1.0),
                    stream(RHO_I, grid1, 1.0),
                    stream(SQUARE, grid1, 1.0),
                    stream_rw(BUFFERS, s(BUF_C), 1.0, 0.5),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(s(BUF_C) / 4),
            },
            self.solve(LHSA, nranks, "x_solve"),
            self.solve(LHSB, nranks, "y_solve"),
            self.solve(LHSC, nranks, "z_solve"),
            StepSpec::Compute(ComputeSpec {
                label: "add",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 6e7),
                accesses: vec![stream_rw(U, grid5, 1.0, 0.5), stream(RHS, grid5, 1.0)],
            }),
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn fifteen_target_objects() {
        let bt = Bt::new(Class::C);
        assert_eq!(bt.objects(0, 4).len(), 15);
    }

    #[test]
    fn directional_solves_use_distinct_lhs() {
        let bt = Bt::new(Class::C);
        let script = bt.script(0, 4, 0);
        let lhs_of = |step: &StepSpec| -> Option<u32> {
            if let StepSpec::Compute(c) = step {
                c.accesses
                    .first()
                    .map(|a| a.obj.0)
                    .filter(|_| c.label.ends_with("_solve"))
            } else {
                None
            }
        };
        let used: Vec<u32> = script.iter().filter_map(lhs_of).collect();
        assert_eq!(used, vec![LHSA, LHSB, LHSC]);
    }

    #[test]
    fn rotating_working_set_pressures_dram() {
        // All three lhs arrays plus the hot core exceed 256 MiB DRAM, but
        // any two lhs plus the core fit — swaps can be proactive.
        let bt = Bt::new(Class::C);
        let objs = bt.objects(0, 4);
        let lhs: Vec<u64> = objs
            .iter()
            .filter(|o| o.name.starts_with("lhs"))
            .map(|o| o.size.get())
            .collect();
        let core: u64 = objs
            .iter()
            .filter(|o| {
                ["u", "rhs", "us", "vs", "ws", "qs", "rho_i", "square"].contains(&o.name.as_str())
            })
            .map(|o| o.size.get())
            .sum();
        let total: u64 = objs.iter().map(|o| o.size.get()).sum();
        assert!(total > 256 << 20, "whole footprint must exceed DRAM");
        assert!(lhs[0] + lhs[1] + core <= 256 << 20);
    }

    #[test]
    fn unimem_narrows_bt_gap() {
        let bt = Bt::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(512));
        let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::kib(900));
        let dram = run_workload(&bt, &m, &cache, 1, &Policy::DramOnly).time();
        let nvm = run_workload(&bt, &m, &cache, 1, &Policy::NvmOnly).time();
        let uni = run_workload(&bt, &m, &cache, 1, &Policy::unimem()).time();
        assert!(nvm > dram);
        assert!(uni.secs() <= nvm.secs() * 1.005, "uni={uni} nvm={nvm}");
    }
}
