//! Descriptor builders shared by the workload definitions.

use unimem_cache::{AccessPattern, ObjAccess};
use unimem_hms::object::ObjId;
use unimem_hms::tier::AccessMix;
use unimem_sim::Bytes;

/// Unit-stride streaming read over `bytes`, touching each 8-byte element
/// `sweeps` times.
pub fn stream(obj: u32, bytes: u64, sweeps: f64) -> ObjAccess {
    ObjAccess::new(
        ObjId(obj),
        ((bytes / 8) as f64 * sweeps) as u64,
        Bytes(bytes),
        AccessPattern::Streaming { stride: Bytes(8) },
    )
}

/// Streaming with a read/write mix (sweep that updates in place).
pub fn stream_rw(obj: u32, bytes: u64, sweeps: f64, read_frac: f64) -> ObjAccess {
    stream(obj, bytes, sweeps).with_mix(AccessMix::new(read_frac))
}

/// Indirect gather: `accesses` references spread over a `span`-byte region
/// of the object (sparse matvec through an index array).
pub fn gather(obj: u32, touched: u64, accesses: u64, span: u64) -> ObjAccess {
    ObjAccess::new(
        ObjId(obj),
        accesses,
        Bytes(touched),
        AccessPattern::Gather {
            index_span: Bytes(span),
        },
    )
}

/// Dependent chain over `bytes` (solver recurrence along a dependence
/// direction), `hops` loads long.
pub fn chase(obj: u32, bytes: u64, hops: u64) -> ObjAccess {
    ObjAccess::new(ObjId(obj), hops, Bytes(bytes), AccessPattern::PointerChase)
}

/// Structured-grid stencil sweep over `bytes` with a `reuse`-byte live
/// window, `sweeps` passes.
pub fn stencil(obj: u32, bytes: u64, sweeps: f64, reuse: u64) -> ObjAccess {
    ObjAccess::new(
        ObjId(obj),
        ((bytes / 8) as f64 * sweeps) as u64,
        Bytes(bytes),
        AccessPattern::Stencil {
            reuse_bytes: Bytes(reuse),
        },
    )
    .with_mix(AccessMix::new(0.7))
}

/// Uniform random references.
pub fn random(obj: u32, bytes: u64, accesses: u64) -> ObjAccess {
    ObjAccess::new(ObjId(obj), accesses, Bytes(bytes), AccessPattern::Random)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_counts_elements() {
        let a = stream(0, 1024, 2.0);
        assert_eq!(a.accesses, 256);
        assert_eq!(a.touched, Bytes(1024));
    }

    #[test]
    fn builders_set_patterns() {
        assert!(matches!(
            gather(1, 64, 10, 128).pattern,
            AccessPattern::Gather { .. }
        ));
        assert!(matches!(
            chase(1, 64, 10).pattern,
            AccessPattern::PointerChase
        ));
        assert!(matches!(
            stencil(1, 64, 1.0, 8).pattern,
            AccessPattern::Stencil { .. }
        ));
        assert!(matches!(random(1, 64, 10).pattern, AccessPattern::Random));
    }

    #[test]
    fn stream_rw_sets_mix() {
        let a = stream_rw(0, 1024, 1.0, 0.5);
        assert!((a.mix.read_frac - 0.5).abs() < 1e-12);
    }
}
