//! The benchmark suite as the harnesses consume it.

use crate::bt::Bt;
use crate::cg::Cg;
use crate::classes::Class;
use crate::ft::Ft;
use crate::lu::Lu;
use crate::mg::Mg;
use crate::nek::Nek;
use crate::sp::Sp;
use unimem::exec::Workload;

/// The six NPB benchmarks in the paper's figure order.
pub fn all_npb(class: Class) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Cg::new(class)),
        Box::new(Ft::new(class)),
        Box::new(Bt::new(class)),
        Box::new(Lu::new(class)),
        Box::new(Sp::new(class)),
        Box::new(Mg::new(class)),
    ]
}

/// NPB plus Nek5000-eddy (the Fig. 9/10/11 and Table 4 set).
pub fn npb_and_nek(class: Class) -> Vec<Box<dyn Workload>> {
    let mut v = all_npb(class);
    v.push(Box::new(Nek::new(class)));
    v
}

/// Canonical short names of the full evaluation suite, in the paper's
/// figure order. The sweep harness iterates this list; `by_name` accepts
/// every entry. Nek5000 is last (the drifting-pattern case study).
pub const SUITE_NAMES: [&str; 7] = ["CG", "FT", "BT", "LU", "SP", "MG", "Nek5000"];

/// A suite member paired with its canonical short name.
pub type NamedWorkload = (String, Box<dyn Workload>);

/// The canonical `SUITE_NAMES` spelling for any alias `by_name` accepts
/// ("nek" → "Nek5000", "cg" → "CG"); `None` for unknown names.
pub fn canonical_name(name: &str) -> Option<&'static str> {
    match name.to_ascii_uppercase().as_str() {
        "CG" => Some("CG"),
        "FT" => Some("FT"),
        "BT" => Some("BT"),
        "LU" => Some("LU"),
        "SP" => Some("SP"),
        "MG" => Some("MG"),
        "NEK" | "NEK5000" | "NEK5000-EDDY" => Some("Nek5000"),
        _ => None,
    }
}

/// Canonicalize a list of suite names to their `SUITE_NAMES` spellings,
/// collapsing duplicates (including alias duplicates like
/// "nek,Nek5000") to one entry, first occurrence wins. Unknown names
/// are errors rather than silent drops — a sweep that quietly skips a
/// workload would still claim full matrix coverage.
pub fn canonicalize_names(names: &[&str]) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::with_capacity(names.len());
    for n in names {
        let canon = canonical_name(n)
            .ok_or_else(|| format!("unknown workload {n:?}; known: {SUITE_NAMES:?}"))?;
        if !out.iter().any(|have| have == canon) {
            out.push(canon.to_string());
        }
    }
    Ok(out)
}

/// Enumerate `(short name, workload)` pairs for a selection of suite
/// members, with [`canonicalize_names`]'s canonicalization/dedup/error
/// semantics.
pub fn select(names: &[&str], class: Class) -> Result<Vec<NamedWorkload>, String> {
    Ok(canonicalize_names(names)?
        .into_iter()
        .map(|canon| {
            let w = by_name(&canon, class).expect("canonical names resolve");
            (canon, w)
        })
        .collect())
}

/// Look a workload up by its short name ("CG", "FT", …, "Nek5000").
pub fn by_name(name: &str, class: Class) -> Option<Box<dyn Workload>> {
    match name.to_ascii_uppercase().as_str() {
        "CG" => Some(Box::new(Cg::new(class))),
        "FT" => Some(Box::new(Ft::new(class))),
        "BT" => Some(Box::new(Bt::new(class))),
        "LU" => Some(Box::new(Lu::new(class))),
        "SP" => Some(Box::new(Sp::new(class))),
        "MG" => Some(Box::new(Mg::new(class))),
        "NEK" | "NEK5000" | "NEK5000-EDDY" => Some(Box::new(Nek::new(class))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_order() {
        let names: Vec<String> = all_npb(Class::C).iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["CG.C", "FT.C", "BT.C", "LU.C", "SP.C", "MG.C"]);
        assert_eq!(npb_and_nek(Class::C).len(), 7);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cg", Class::S).is_some());
        assert!(by_name("Nek5000", Class::S).is_some());
        assert!(by_name("EP", Class::S).is_none());
    }

    #[test]
    fn suite_names_cover_the_whole_suite() {
        let sel = select(&SUITE_NAMES, Class::S).expect("all canonical names resolve");
        assert_eq!(sel.len(), 7);
        let names: Vec<&str> = sel.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, SUITE_NAMES);
        assert!(
            select(&["CG", "EP"], Class::S).is_err(),
            "unknown name is an error"
        );
    }

    #[test]
    fn select_canonicalizes_and_dedups_aliases() {
        let sel = select(&["nek", "cg", "NEK5000-EDDY", "CG"], Class::S).unwrap();
        let names: Vec<&str> = sel.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Nek5000", "CG"], "alias duplicates collapse");
        assert_eq!(canonical_name("EP"), None);
    }

    #[test]
    fn every_workload_has_consistent_object_ids() {
        // Descriptors must reference registered object ids only.
        for w in npb_and_nek(Class::S) {
            let n_objs = w.objects(0, 2).len() as u32;
            for it in 0..2 {
                for step in w.script(0, 2, it) {
                    if let unimem::exec::StepSpec::Compute(c) = step {
                        for acc in &c.accesses {
                            assert!(
                                acc.obj.0 < n_objs,
                                "{}: access to unregistered obj {} (have {n_objs})",
                                w.name(),
                                acc.obj.0
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn every_workload_runs_under_every_basic_policy() {
        use unimem::exec::{run_workload, Policy};
        use unimem_cache::CacheModel;
        use unimem_hms::MachineConfig;
        let cache = CacheModel::new(unimem_sim::Bytes::kib(512));
        let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(unimem_sim::Bytes::mib(4));
        for w in npb_and_nek(Class::S) {
            for policy in [Policy::DramOnly, Policy::NvmOnly, Policy::unimem()] {
                let rep = run_workload(w.as_ref(), &m, &cache, 2, &policy);
                assert!(
                    rep.time().secs() > 0.0,
                    "{} under {:?} produced zero time",
                    w.name(),
                    rep.policy
                );
            }
        }
    }
}
