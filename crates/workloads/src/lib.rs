//! Phase-structured workloads: the six NAS parallel benchmarks of the
//! paper's evaluation (CG, FT, BT, LU, SP, MG) and a Nek5000-eddy
//! mini-app, expressed as [`unimem::Workload`] phase scripts.
//!
//! Each workload reproduces, at class scale, the properties the paper's
//! evaluation depends on:
//!
//! * the **target data objects** of Table 3, with sizes derived from the
//!   NPB class geometries divided over ranks;
//! * the **phase structure** of the main iteration (computation delineated
//!   by MPI operations, Fig. 1);
//! * the per-(phase, object) **access patterns** that make objects
//!   bandwidth- or latency-sensitive (Observation 3): solver recurrences
//!   chase pointers, sweeps stream, sparse matvecs gather;
//! * the paper-relevant quirks: FT's arrays exceed DRAM (partitioning
//!   pays off), MG's arrays hide behind aliases (partitioning blocked),
//!   BT/SP sweep different directions with different working sets
//!   (phase-local search pays off), Nek5000 drifts across iterations
//!   (adaptivity pays off, offline profiling suffers).
//!
//! The numeric volumes are workload *models*: they come from the kernels'
//! loop structure, with constants chosen so the NVM-only slowdowns land in
//! the ranges Figures 2/3 report. `EXPERIMENTS.md` records paper-vs-
//! measured for every figure.
//!
//! Beyond the paper's single-application evaluation, [`corun`] composes
//! suite members into multi-tenant mixes (pairs/triples with staggered
//! phase clocks) for the DRAM-arbitration co-run sweep.

pub mod bt;
pub mod cg;
pub mod classes;
pub mod corun;
pub mod ft;
pub mod helpers;
pub mod lu;
pub mod mg;
pub mod nek;
pub mod sp;
pub mod suite;

pub use classes::Class;
pub use corun::{dedup_mixes, parse_mixes, reduced_mixes, standard_mixes, CorunMember, CorunMix};
pub use suite::{
    all_npb, by_name, canonical_name, canonicalize_names, npb_and_nek, select, SUITE_NAMES,
};
