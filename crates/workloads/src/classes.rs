//! NPB problem classes.
//!
//! The paper uses CLASS C (basic tests, 4 ranks) and CLASS D (emulation
//! study and strong scaling, 16+ ranks); FT falls back to CLASS C in the
//! emulation study for running-time reasons. Classes here scale both the
//! footprints and the iteration counts; iteration counts are shortened
//! uniformly (the steady-state behaviour repeats, and the runtime's
//! decisions happen within the first few iterations).

use serde::{Deserialize, Serialize};

/// NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Class {
    /// Miniature, for tests: everything fits caches; runs in microseconds.
    S,
    /// Paper CLASS C: the basic-performance-test input (4 ranks).
    C,
    /// Paper CLASS D: the emulation-study input (16 ranks).
    D,
}

impl Class {
    /// Linear footprint scale relative to CLASS C.
    pub fn scale(self) -> f64 {
        match self {
            Class::S => 1.0 / 256.0,
            Class::C => 1.0,
            Class::D => 8.0,
        }
    }

    /// Main-loop iterations to simulate (shortened uniformly; the paper's
    /// counts are 75–250).
    pub fn iterations(self) -> usize {
        match self {
            Class::S => 6,
            Class::C => 12,
            Class::D => 12,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::C => "C",
            Class::D => "D",
        }
    }
}

/// Scale a CLASS C byte size to `class`, dividing over `nranks`.
pub fn scaled_bytes(class_c_total: u64, class: Class, nranks: usize) -> u64 {
    ((class_c_total as f64 * class.scale()) / nranks as f64).max(1.0) as u64
}

/// Scale a CLASS C access count likewise.
pub fn scaled_accesses(class_c_total: u64, class: Class, nranks: usize) -> u64 {
    scaled_bytes(class_c_total, class, nranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_d_is_eight_c() {
        assert_eq!(scaled_bytes(1 << 20, Class::D, 1), 8 << 20);
    }

    #[test]
    fn ranks_divide_footprint() {
        assert_eq!(scaled_bytes(1 << 20, Class::C, 4), 1 << 18);
    }

    #[test]
    fn class_s_is_tiny() {
        assert!(scaled_bytes(1 << 30, Class::S, 1) <= 4 << 20);
    }

    #[test]
    fn never_zero() {
        assert!(scaled_bytes(1, Class::S, 1024) >= 1);
    }
}
