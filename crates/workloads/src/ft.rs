//! FT — 3-D FFT PDE solver (NPB).
//!
//! Table 3: `u, u0, u1, u2, twiddle` cover 99% of the footprint. The state
//! arrays are complex grids far larger than the DRAM of the paper's HMS
//! (CLASS C: 2 GB each over 4 ranks = 512 MB per rank vs. 256 MB DRAM), so
//! whole-object placement is impossible — FT is the benchmark where
//! large-object partitioning pays off (58% of Unimem's improvement,
//! Fig. 11). Every pass streams: FT is bandwidth-sensitive throughout.

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

pub const U: u32 = 0;
pub const U0: u32 = 1;
pub const U1: u32 = 2;
pub const U2: u32 = 3;
pub const TWIDDLE: u32 = 4;

/// CLASS C totals: 512³ complex doubles = 2 GiB per state array.
const STATE_C: u64 = 2 << 30;
const ROOTS_C: u64 = 16 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Ft {
    pub class: Class,
}

impl Ft {
    pub fn new(class: Class) -> Ft {
        Ft { class }
    }
}

impl Workload for Ft {
    fn name(&self) -> String {
        format!("FT.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let st = scaled_bytes(STATE_C, self.class, nranks);
        let tw = scaled_bytes(STATE_C, self.class, nranks);
        let roots = scaled_bytes(ROOTS_C, self.class, nranks);
        let it = self.class.iterations() as f64;
        vec![
            ObjectSpec::new("u", Bytes(roots)).est_refs(it * roots as f64),
            // The big 1-D state arrays: regular references, partitionable.
            ObjectSpec::new("u0", Bytes(st))
                .partitionable(true)
                .est_refs(it * st as f64 / 8.0),
            ObjectSpec::new("u1", Bytes(st))
                .partitionable(true)
                .est_refs(it * 2.0 * st as f64 / 8.0),
            ObjectSpec::new("u2", Bytes(st))
                .partitionable(true)
                .est_refs(it * st as f64 / 8.0),
            ObjectSpec::new("twiddle", Bytes(tw))
                .partitionable(true)
                .est_refs(it * tw as f64 / 8.0),
        ]
    }

    fn script(&self, _rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let st = scaled_bytes(STATE_C, self.class, nranks);
        let roots = scaled_bytes(ROOTS_C, self.class, nranks);
        // Transpose exchanges the whole state across ranks.
        let a2a = st / nranks.max(1) as u64;
        vec![
            // evolve: u0 = u0·twiddle, u1 = u0
            StepSpec::Compute(ComputeSpec {
                label: "evolve",
                cpu: VDur::from_millis(st as f64 / 8.0 / 1.2e5),
                accesses: vec![
                    stream_rw(U0, st, 1.0, 0.6),
                    stream(TWIDDLE, st, 1.0),
                    stream_rw(U1, st, 1.0, 0.0),
                ],
            }),
            // local FFT passes over u1 (multiple butterflies = sweeps)
            StepSpec::Compute(ComputeSpec {
                label: "fft-local",
                cpu: VDur::from_millis(st as f64 / 8.0 / 1.5e5),
                accesses: vec![stream_rw(U1, st, 3.0, 0.5), stream(U, roots, 2.0)],
            }),
            // global transpose
            StepSpec::Alltoall { bytes: Bytes(a2a) },
            // FFT along the distributed dimension into u2
            StepSpec::Compute(ComputeSpec {
                label: "fft-transposed",
                cpu: VDur::from_millis(st as f64 / 8.0 / 1.7e5),
                accesses: vec![
                    stream(U1, st, 1.0),
                    stream_rw(U2, st, 2.0, 0.4),
                    stream(U, roots, 1.0),
                ],
            }),
            // checksum reduction
            StepSpec::AllreduceSum { bytes: Bytes(16) },
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy, UnimemConfig};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn state_arrays_exceed_class_c_dram() {
        let ft = Ft::new(Class::C);
        let objs = ft.objects(0, 4);
        // 512 MiB per rank > 256 MiB DRAM.
        assert_eq!(objs[1].size, Bytes(512 << 20));
        assert!(objs[1].partitionable);
    }

    #[test]
    fn ft_is_bandwidth_sensitive() {
        let ft = Ft::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(256));
        let dram = run_workload(
            &ft,
            &MachineConfig::nvm_bw_fraction(0.5),
            &cache,
            1,
            &Policy::DramOnly,
        )
        .time();
        let bw = run_workload(
            &ft,
            &MachineConfig::nvm_bw_fraction(0.5),
            &cache,
            1,
            &Policy::NvmOnly,
        )
        .time();
        let lat = run_workload(
            &ft,
            &MachineConfig::nvm_lat_multiple(4.0),
            &cache,
            1,
            &Policy::NvmOnly,
        )
        .time();
        let s_bw = bw.secs() / dram.secs();
        let s_lat = lat.secs() / dram.secs();
        assert!(
            s_bw > 1.15,
            "FT must suffer from halved bandwidth, got {s_bw:.2}"
        );
        assert!(s_bw > s_lat, "bw {s_bw:.2} vs lat {s_lat:.2}");
    }

    #[test]
    fn partitioning_unlocks_placement() {
        // Without partitioning no state array fits DRAM; with it, chunks
        // do — Unimem-with-partitioning must beat Unimem-without.
        let ft = Ft::new(Class::C);
        let cache = CacheModel::platform_a();
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let without = run_workload(
            &ft,
            &m,
            &cache,
            1,
            &Policy::Unimem(UnimemConfig {
                partitioning: false,
                ..UnimemConfig::default()
            }),
        )
        .time();
        let with = run_workload(&ft, &m, &cache, 1, &Policy::unimem()).time();
        assert!(
            with.secs() < without.secs() * 0.995,
            "with={with} without={without}"
        );
    }
}
