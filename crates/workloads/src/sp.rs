//! SP — scalar-pentadiagonal ADI solver (NPB).
//!
//! The paper's placement case study (Fig. 4) uses SP's four critical data
//! objects: `lhs` (the pentadiagonal systems — forward/backward
//! elimination is a dependent recurrence: latency-sensitive, not
//! bandwidth), `rhs` (streamed in the RHS evaluation *and* chased in the
//! solves: sensitive to both), and the `in/out` message buffers (pure
//! pack/unpack streams: bandwidth-sensitive, not latency). Initial data
//! placement contributes most of Unimem's win on SP (87%, Fig. 11).

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{chase, stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

pub const U: u32 = 0;
pub const US: u32 = 1;
pub const VS: u32 = 2;
pub const WS: u32 = 3;
pub const QS: u32 = 4;
pub const RHO_I: u32 = 5;
pub const SQUARE: u32 = 6;
pub const SPEED: u32 = 7;
pub const RHS: u32 = 8;
pub const FORCING: u32 = 9;
pub const LHS: u32 = 10;
pub const OUT_BUFFER: u32 = 11;
pub const IN_BUFFER: u32 = 12;

const GRID5_C: u64 = 170 << 20;
const GRID1_C: u64 = 34 << 20;
const LHS_C: u64 = 510 << 20; // 15 coefficients per point
const BUF_C: u64 = 128 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Sp {
    pub class: Class,
}

impl Sp {
    pub fn new(class: Class) -> Sp {
        Sp { class }
    }

    fn solve(&self, nranks: usize, label: &'static str, vel: u32) -> StepSpec {
        let lhs = scaled_bytes(LHS_C, self.class, nranks);
        let grid5 = scaled_bytes(GRID5_C, self.class, nranks);
        let grid1 = scaled_bytes(GRID1_C, self.class, nranks);
        StepSpec::Compute(ComputeSpec {
            label,
            cpu: VDur::from_millis(grid5 as f64 / 8.0 / 3e7),
            accesses: vec![
                // Pentadiagonal elimination: dependent recurrences through
                // the factors — the latency-sensitive core of SP.
                chase(LHS, lhs, lhs / 8 / 6),
                stream(LHS, lhs, 0.3),
                stream_rw(RHS, grid5, 0.7, 0.5),
                chase(RHS, grid5, grid5 / 8 / 16),
                stream(vel, grid1, 1.0),
                stream(SPEED, grid1, 1.0),
            ],
        })
    }
}

impl Workload for Sp {
    fn name(&self) -> String {
        format!("SP.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let it = self.class.iterations() as f64;
        let grid5 = s(GRID5_C);
        let grid1 = s(GRID1_C);
        let mut objs =
            vec![ObjectSpec::new("u", Bytes(grid5)).est_refs(it * 2.0 * grid5 as f64 / 8.0)];
        for name in ["us", "vs", "ws", "qs", "rho_i", "square", "speed"] {
            objs.push(ObjectSpec::new(name, Bytes(grid1)).est_refs(it * 2.0 * grid1 as f64 / 8.0));
        }
        objs.push(ObjectSpec::new("rhs", Bytes(grid5)).est_refs(it * 5.0 * grid5 as f64 / 8.0));
        objs.push(ObjectSpec::new("forcing", Bytes(grid5)).est_refs(it * grid5 as f64 / 8.0));
        objs.push(
            ObjectSpec::new("lhs", Bytes(s(LHS_C)))
                .partitionable(true)
                .est_refs(it * 4.0 * s(LHS_C) as f64 / 8.0),
        );
        objs.push(
            ObjectSpec::new("out_buffer", Bytes(s(BUF_C))).est_refs(it * s(BUF_C) as f64 / 8.0),
        );
        objs.push(
            ObjectSpec::new("in_buffer", Bytes(s(BUF_C))).est_refs(it * s(BUF_C) as f64 / 8.0),
        );
        objs
    }

    fn script(&self, rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let grid5 = s(GRID5_C);
        let grid1 = s(GRID1_C);
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;
        vec![
            // RHS evaluation + pack: streams everything once, fills the
            // outgoing halo buffer.
            StepSpec::Compute(ComputeSpec {
                label: "compute_rhs+pack",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 3e7),
                accesses: vec![
                    stream(U, grid5, 1.0),
                    stream_rw(RHS, grid5, 1.5, 0.4),
                    stream(FORCING, grid5, 1.0),
                    stream(US, grid1, 1.0),
                    stream(VS, grid1, 1.0),
                    stream(WS, grid1, 1.0),
                    stream(QS, grid1, 1.0),
                    stream(RHO_I, grid1, 1.0),
                    stream(SQUARE, grid1, 1.0),
                    stream_rw(OUT_BUFFER, s(BUF_C), 1.5, 0.1),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(s(BUF_C) / 8),
            },
            // Unpack the incoming halo.
            StepSpec::Compute(ComputeSpec {
                label: "unpack",
                cpu: VDur::from_millis(s(BUF_C) as f64 / 8.0 / 8e7),
                accesses: vec![
                    stream(IN_BUFFER, s(BUF_C), 1.5),
                    stream_rw(RHS, grid5, 0.3, 0.2),
                ],
            }),
            self.solve(nranks, "x_solve", US),
            self.solve(nranks, "y_solve", VS),
            self.solve(nranks, "z_solve", WS),
            StepSpec::Compute(ComputeSpec {
                label: "add",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 6e7),
                accesses: vec![stream_rw(U, grid5, 1.0, 0.5), stream(RHS, grid5, 1.0)],
            }),
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;
    use unimem_sim::VDur;

    fn slowdown(w: &Sp, m: &MachineConfig, pin: Option<&str>) -> f64 {
        let cache = CacheModel::new(Bytes::kib(512));
        let dram = run_workload(w, m, &cache, 1, &Policy::DramOnly).time();
        let policy = match pin {
            None => Policy::NvmOnly,
            Some(name) => Policy::Static {
                in_dram: vec![name.to_string()],
                label: format!("pin {name}"),
            },
        };
        let t: VDur = run_workload(w, m, &cache, 1, &policy).time();
        t.secs() / dram.secs()
    }

    #[test]
    fn thirteen_objects_match_table3() {
        let sp = Sp::new(Class::C);
        let names: Vec<String> = sp.objects(0, 4).iter().map(|o| o.name.clone()).collect();
        assert!(names.contains(&"lhs".to_string()));
        assert!(names.contains(&"in_buffer".to_string()));
        assert!(names.contains(&"out_buffer".to_string()));
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn fig4_lhs_is_latency_sensitive_not_bandwidth() {
        let sp = Sp::new(Class::S);
        let m_bw = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::gib(1));
        let m_lat = MachineConfig::nvm_lat_multiple(4.0).with_dram_capacity(Bytes::gib(1));
        // Pinning lhs recovers a bigger share of the gap under 4× latency
        // than under ½ bandwidth.
        let gain_lat = slowdown(&sp, &m_lat, None) - slowdown(&sp, &m_lat, Some("lhs"));
        let gain_bw = slowdown(&sp, &m_bw, None) - slowdown(&sp, &m_bw, Some("lhs"));
        assert!(
            gain_lat > gain_bw + 0.02,
            "lhs: lat gain {gain_lat:.3} vs bw gain {gain_bw:.3}"
        );
    }

    #[test]
    fn fig4_buffers_are_bandwidth_sensitive_not_latency() {
        let sp = Sp::new(Class::S);
        let m_bw = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::gib(1));
        let m_lat = MachineConfig::nvm_lat_multiple(4.0).with_dram_capacity(Bytes::gib(1));
        let base_bw = slowdown(&sp, &m_bw, None);
        let base_lat = slowdown(&sp, &m_lat, None);
        let pin_bw = {
            let cache = CacheModel::new(Bytes::kib(512));
            let dram = run_workload(&sp, &m_bw, &cache, 1, &Policy::DramOnly).time();
            let t = run_workload(
                &sp,
                &m_bw,
                &cache,
                1,
                &Policy::Static {
                    in_dram: vec!["in_buffer".into(), "out_buffer".into()],
                    label: "pin buffers".into(),
                },
            )
            .time();
            t.secs() / dram.secs()
        };
        let pin_lat = {
            let cache = CacheModel::new(Bytes::kib(512));
            let dram = run_workload(&sp, &m_lat, &cache, 1, &Policy::DramOnly).time();
            let t = run_workload(
                &sp,
                &m_lat,
                &cache,
                1,
                &Policy::Static {
                    in_dram: vec!["in_buffer".into(), "out_buffer".into()],
                    label: "pin buffers".into(),
                },
            )
            .time();
            t.secs() / dram.secs()
        };
        let gain_bw = base_bw - pin_bw;
        let gain_lat = base_lat - pin_lat;
        assert!(
            gain_bw > gain_lat,
            "buffers: bw gain {gain_bw:.3} vs lat gain {gain_lat:.3}"
        );
    }
}
