//! CG — conjugate gradient with an irregular sparse matrix (NPB).
//!
//! The paper's running example (Fig. 1): the iteration alternates a sparse
//! matrix-vector product `q = A·p` with dot products (allreduce) and vector
//! updates. The matvec's indirection through `colidx` gives `a` and `p`
//! poor locality and *dependent* access chains — CG is the latency-
//! sensitive benchmark of the suite. Table 3: target objects `colidx, a,
//! w, z, p, q, r, rowstr, x` cover 42% of the footprint (the three large
//! initialization-only arrays `aelt/acol/arow` are deliberately excluded,
//! as in the paper).

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{gather, stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

/// Object indices (registration order).
pub const A: u32 = 0;
pub const COLIDX: u32 = 1;
pub const ROWSTR: u32 = 2;
pub const X: u32 = 3;
pub const Z: u32 = 4;
pub const P: u32 = 5;
pub const Q: u32 = 6;
pub const R: u32 = 7;
pub const W: u32 = 8;

/// CLASS C totals (bytes): `a` holds the nonzeros, `colidx` their column
/// indices, vectors are `na`-long.
const A_C: u64 = 288 << 20;
const COLIDX_C: u64 = 144 << 20;
const ROWSTR_C: u64 = 4 << 20;
const VEC_C: u64 = 12 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Cg {
    pub class: Class,
}

impl Cg {
    pub fn new(class: Class) -> Cg {
        Cg { class }
    }

    fn sz(&self, total_c: u64, nranks: usize) -> u64 {
        scaled_bytes(total_c, self.class, nranks)
    }
}

impl Workload for Cg {
    fn name(&self) -> String {
        format!("CG.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let a = self.sz(A_C, nranks);
        let colidx = self.sz(COLIDX_C, nranks);
        let rowstr = self.sz(ROWSTR_C, nranks);
        let vec = self.sz(VEC_C, nranks);
        let it = self.class.iterations() as f64;
        vec![
            ObjectSpec::new("a", Bytes(a))
                .partitionable(true)
                .est_refs(it * a as f64 / 8.0),
            ObjectSpec::new("colidx", Bytes(colidx))
                .partitionable(true)
                .est_refs(it * colidx as f64 / 4.0),
            ObjectSpec::new("rowstr", Bytes(rowstr))
                .partitionable(true)
                .est_refs(it * rowstr as f64 / 8.0),
            ObjectSpec::new("x", Bytes(vec)).est_refs(it * vec as f64 / 8.0),
            ObjectSpec::new("z", Bytes(vec)).est_refs(2.0 * it * vec as f64 / 8.0),
            ObjectSpec::new("p", Bytes(vec)).est_refs(4.0 * it * vec as f64 / 8.0),
            ObjectSpec::new("q", Bytes(vec)).est_refs(3.0 * it * vec as f64 / 8.0),
            ObjectSpec::new("r", Bytes(vec)).est_refs(3.0 * it * vec as f64 / 8.0),
            ObjectSpec::new("w", Bytes(vec)).est_refs(2.0 * it * vec as f64 / 8.0),
        ]
    }

    fn script(&self, rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let a = self.sz(A_C, nranks);
        let colidx = self.sz(COLIDX_C, nranks);
        let vec = self.sz(VEC_C, nranks);
        let nnz = a / 8;
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;
        vec![
            // q = A·p: the irregular heart. `a` is traversed through the
            // row/column indirection — modeled as a gather over its own
            // span; `p` is gathered through colidx.
            StepSpec::Compute(ComputeSpec {
                label: "matvec",
                cpu: VDur::from_millis(2.0 * nnz as f64 / 4e6),
                accesses: vec![
                    // CSR traversal of the nonzeros is sequential in `a`
                    // and `colidx`; the latency sensitivity comes from the
                    // indirect loads of `p` spread across the rank's whole
                    // column window (poor temporal reuse).
                    stream(A, a, 1.0),
                    stream(COLIDX, colidx, 1.0),
                    gather(P, vec, nnz / 2, colidx),
                    stream_rw(Q, vec, 1.0, 0.1),
                    stream(ROWSTR, self.sz(ROWSTR_C, nranks), 1.0),
                ],
            }),
            // d = p·q
            StepSpec::AllreduceSum { bytes: Bytes(8) },
            // z += alpha p ; r -= alpha q
            StepSpec::Compute(ComputeSpec {
                label: "axpy",
                cpu: VDur::from_millis(vec as f64 / 8.0 / 2e7),
                accesses: vec![
                    stream_rw(Z, vec, 1.0, 0.5),
                    stream_rw(R, vec, 1.0, 0.5),
                    stream(P, vec, 1.0),
                    stream(Q, vec, 1.0),
                ],
            }),
            // rho = r·r
            StepSpec::AllreduceSum { bytes: Bytes(8) },
            // p = r + beta p ; w workspace
            StepSpec::Compute(ComputeSpec {
                label: "p-update",
                cpu: VDur::from_millis(vec as f64 / 8.0 / 2e7),
                accesses: vec![
                    stream_rw(P, vec, 1.0, 0.5),
                    stream(R, vec, 1.0),
                    stream_rw(W, vec, 1.0, 0.3),
                ],
            }),
            // boundary exchange of p for the next matvec
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(vec / 8),
            },
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn objects_match_table3() {
        let cg = Cg::new(Class::C);
        let objs = cg.objects(0, 4);
        let names: Vec<&str> = objs.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["a", "colidx", "rowstr", "x", "z", "p", "q", "r", "w"]
        );
        // Per-rank CLASS C: a = 288 MiB / 4.
        assert_eq!(objs[0].size, Bytes(72 << 20));
    }

    #[test]
    fn footprint_shrinks_with_ranks() {
        let cg = Cg::new(Class::D);
        let at4: u64 = cg.objects(0, 4).iter().map(|o| o.size.get()).sum();
        let at16: u64 = cg.objects(0, 16).iter().map(|o| o.size.get()).sum();
        assert_eq!(at4, at16 * 4);
    }

    #[test]
    fn cg_is_latency_sensitive() {
        // 4× latency must hurt CG more than ½ bandwidth (Obs. 3 / Fig. 4).
        let cg = Cg::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(256));
        let dram = run_workload(
            &cg,
            &MachineConfig::nvm_bw_fraction(0.5),
            &cache,
            1,
            &Policy::DramOnly,
        )
        .time();
        let bw = run_workload(
            &cg,
            &MachineConfig::nvm_bw_fraction(0.5),
            &cache,
            1,
            &Policy::NvmOnly,
        )
        .time();
        let lat = run_workload(
            &cg,
            &MachineConfig::nvm_lat_multiple(4.0),
            &cache,
            1,
            &Policy::NvmOnly,
        )
        .time();
        let s_bw = bw.secs() / dram.secs();
        let s_lat = lat.secs() / dram.secs();
        assert!(s_lat > s_bw, "lat slowdown {s_lat:.2} vs bw {s_bw:.2}");
    }

    #[test]
    fn script_phase_structure_is_stable() {
        let cg = Cg::new(Class::C);
        let s0 = cg.script(0, 4, 0);
        let s5 = cg.script(0, 4, 5);
        assert_eq!(s0.len(), s5.len());
        assert_eq!(s0.len(), 6);
    }
}
