//! Nek5000 "eddy" — a spectral-element CFD mini-app.
//!
//! The paper's production code: 48 target data objects (main simulation
//! variables and geometry arrays of the Nek5000 core, 35% of the
//! footprint), eddy test problem on a 256×256 mesh. What matters for the
//! reproduction is Nek5000's distinguishing behaviour: **memory access
//! patterns vary across phases and across iterations** (projection-space
//! growth in the pressure solver, shifting element workloads), which
//! (a) trips the >10% variation monitor so Unimem re-profiles and keeps
//! migrating (102 migrations, 1.1 GB moved in Table 4), and (b) defeats a
//! static offline-profiled placement — the 10% X-Mem gap of Fig. 9/10.
//!
//! The drift is deterministic: the pressure solve's Krylov depth cycles
//! with a period of several iterations, and the "hot" geometry block
//! rotates as the eddy advects across the element layout.

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{gather, stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

/// Simulation variables: vx, vy, vz, pr, t, plus three work fields.
const N_FIELDS: u32 = 8;
/// Geometry blocks: rxm1..tzm1-style metric arrays.
const N_GEOM: u32 = 6;
/// Small per-element work arrays to reach Nek5000's 48 target objects.
const N_WORK: u32 = 34;

const FIELD_C: u64 = 140 << 20;
const GEOM_C: u64 = 100 << 20;
const WORK_C: u64 = 12 << 20;

/// Advection period: the hot geometry block rotates this often.
const DRIFT_PERIOD: usize = 4;

#[derive(Debug, Clone, Copy)]
pub struct Nek {
    pub class: Class,
}

impl Nek {
    pub fn new(class: Class) -> Nek {
        Nek { class }
    }

    fn field(&self, nranks: usize) -> u64 {
        scaled_bytes(FIELD_C, self.class, nranks)
    }

    fn geom(&self, nranks: usize) -> u64 {
        scaled_bytes(GEOM_C, self.class, nranks)
    }
}

impl Workload for Nek {
    fn name(&self) -> String {
        format!("Nek5000-eddy.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let it = self.class.iterations() as f64;
        let field = self.field(nranks);
        let geom = self.geom(nranks);
        let work = scaled_bytes(WORK_C, self.class, nranks);
        let names = ["vx", "vy", "vz", "pr", "t", "wk1", "wk2", "wk3"];
        let mut objs: Vec<ObjectSpec> = names
            .iter()
            .map(|n| ObjectSpec::new(*n, Bytes(field)).est_refs(it * field as f64 / 8.0))
            .collect();
        for g in 0..N_GEOM {
            // Geometry reference intensity depends on the advected eddy
            // position — unknown before the loop, so no static estimate
            // (est_refs = 0), exactly the paper's convergence-test caveat.
            objs.push(ObjectSpec::new(format!("geom{g}"), Bytes(geom)));
        }
        for w in 0..N_WORK {
            objs.push(
                ObjectSpec::new(format!("work{w}"), Bytes(work)).est_refs(it * work as f64 / 16.0),
            );
        }
        objs
    }

    fn script(&self, rank: usize, nranks: usize, iter: usize) -> Vec<StepSpec> {
        let field = self.field(nranks);
        let geom = self.geom(nranks);
        let work = scaled_bytes(WORK_C, self.class, nranks);
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;

        // Drift: which geometry block is hot, and how deep the pressure
        // solve iterates this step (Krylov depth cycles 1x..2.2x).
        let hot_geom = N_FIELDS + ((iter / DRIFT_PERIOD) as u32 % N_GEOM);
        let krylov = 1.0 + 1.2 * ((iter % (2 * DRIFT_PERIOD)) / DRIFT_PERIOD) as f64;

        let vx = 0u32;
        let vy = 1u32;
        let pr = 3u32;
        let t = 4u32;
        let wk1 = 5u32;
        vec![
            // makef: advection + forcing over the velocity fields.
            StepSpec::Compute(ComputeSpec {
                label: "makef",
                cpu: VDur::from_millis(field as f64 / 8.0 / 4e7),
                accesses: vec![
                    stream_rw(vx, field, 1.5, 0.6),
                    stream_rw(vy, field, 1.5, 0.6),
                    stream(hot_geom, geom, 2.0),
                    stream_rw(wk1, field, 1.0, 0.3),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(field / 64),
            },
            // Pressure Poisson solve: gather-heavy spectral operators,
            // depth varies with the Krylov cycle.
            StepSpec::Compute(ComputeSpec {
                label: "pressure-solve",
                cpu: VDur::from_millis(krylov * field as f64 / 8.0 / 3e7),
                accesses: vec![
                    gather(pr, field, (krylov * (field / 8) as f64) as u64, field),
                    stream(hot_geom, geom, krylov),
                    stream_rw(wk1, field, krylov, 0.5),
                ],
            }),
            StepSpec::AllreduceSum { bytes: Bytes(8) },
            // Heat / scalar transport.
            StepSpec::Compute(ComputeSpec {
                label: "heat",
                cpu: VDur::from_millis(field as f64 / 8.0 / 5e7),
                accesses: vec![
                    stream_rw(t, field, 1.0, 0.5),
                    stream(vx, field, 0.5),
                    stream(vy, field, 0.5),
                    stream(N_FIELDS + N_GEOM, work, 1.0),
                ],
            }),
            StepSpec::AllreduceSum { bytes: Bytes(8) },
        ]
    }

    fn iterations(&self) -> usize {
        // The eddy case runs long; keep enough iterations to see several
        // drift periods.
        self.class.iterations().max(4 * DRIFT_PERIOD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn forty_eight_target_objects() {
        let nek = Nek::new(Class::C);
        assert_eq!(nek.objects(0, 4).len(), 48);
    }

    #[test]
    fn geometry_estimates_are_unknown_statically() {
        let nek = Nek::new(Class::C);
        let objs = nek.objects(0, 4);
        assert!(objs
            .iter()
            .filter(|o| o.name.starts_with("geom"))
            .all(|o| o.est_refs == 0.0));
    }

    #[test]
    fn access_pattern_drifts_across_iterations() {
        let nek = Nek::new(Class::C);
        let s0 = nek.script(0, 4, 0);
        let s_next = nek.script(0, 4, DRIFT_PERIOD);
        // Same structure...
        assert_eq!(s0.len(), s_next.len());
        // ...different hot geometry object.
        let hot = |s: &[StepSpec]| -> u32 {
            if let StepSpec::Compute(c) = &s[0] {
                c.accesses[2].obj.0
            } else {
                unreachable!()
            }
        };
        assert_ne!(hot(&s0), hot(&s_next));
    }

    #[test]
    fn unimem_adapts_and_keeps_migrating() {
        let nek = Nek::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(512));
        let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(2));
        let rep = run_workload(&nek, &m, &cache, 1, &Policy::unimem());
        // Drift must trip the variation monitor at least once and cause
        // follow-up migrations (Table 4: Nek has by far the most).
        assert!(rep.job.reprofiles > 0, "no re-profiling happened");
        assert!(rep.job.migrations.count > 0);
    }
}
