//! MG — multigrid V-cycle solver (NPB).
//!
//! Table 3: `buff, u, v, r` (99% of the footprint). `u` and `r` carry the
//! whole grid *hierarchy* and are referenced through memory aliases
//! created outside the main loop (per-level pointers into one backing
//! array) — the paper's compiler cannot partition them, which is exactly
//! why MG underuses a 128 MB DRAM in Fig. 13. `v` (the right-hand side,
//! finest level only) is alias-free but still a single high-dimensional
//! array the conservative partitioner leaves whole; it fits 256 MB but
//! not 128 MB, reproducing the Fig. 13 step.

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{stencil, stream};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

pub const BUFF: u32 = 0;
pub const U: u32 = 1;
pub const V: u32 = 2;
pub const R: u32 = 3;

/// CLASS C totals: 512³ doubles = 1 GiB finest grid; the hierarchy adds
/// ~14%. Per rank over 4 ranks: u, r ≈ 300 MiB; v = 150 MiB (kept at the
/// finest level's rank share minus ghost layers).
const U_C: u64 = 1200 << 20;
const V_C: u64 = 600 << 20;
const R_C: u64 = 1200 << 20;
const BUFF_C: u64 = 68 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Mg {
    pub class: Class,
}

impl Mg {
    pub fn new(class: Class) -> Mg {
        Mg { class }
    }
}

impl Workload for Mg {
    fn name(&self) -> String {
        format!("MG.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let it = self.class.iterations() as f64;
        vec![
            ObjectSpec::new("buff", Bytes(s(BUFF_C))).est_refs(it * 4.0 * s(BUFF_C) as f64 / 8.0),
            ObjectSpec::new("u", Bytes(s(U_C)))
                .partitionable(true)
                .aliased(true)
                .est_refs(it * 2.0 * s(U_C) as f64 / 8.0),
            ObjectSpec::new("v", Bytes(s(V_C))).est_refs(it * 2.5 * s(V_C) as f64 / 8.0),
            ObjectSpec::new("r", Bytes(s(R_C)))
                .partitionable(true)
                .aliased(true)
                .est_refs(it * 3.0 * s(R_C) as f64 / 8.0),
        ]
    }

    fn script(&self, rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;
        // Plane reuse window of a 27-point stencil on the rank's subgrid.
        let plane = (s(U_C) as f64).powf(2.0 / 3.0) as u64 * 3;
        vec![
            // resid: r = v − A·u over the V-cycle levels.
            StepSpec::Compute(ComputeSpec {
                label: "resid",
                cpu: VDur::from_millis(s(U_C) as f64 / 8.0 / 1.5e5),
                accesses: vec![
                    stencil(U, s(U_C), 0.4, plane),
                    stream(V, s(V_C), 2.0),
                    stencil(R, s(R_C), 0.4, plane),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(s(BUFF_C) / 8),
            },
            // psinv: u += M·r (smoother), down/up the hierarchy.
            StepSpec::Compute(ComputeSpec {
                label: "psinv+cycle",
                cpu: VDur::from_millis(s(U_C) as f64 / 8.0 / 2.1e5),
                accesses: vec![
                    stencil(U, s(U_C), 0.5, plane),
                    stencil(R, s(R_C), 0.5, plane),
                    stream(BUFF, s(BUFF_C), 4.0),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(s(BUFF_C) / 8),
            },
            // norm check
            StepSpec::AllreduceSum { bytes: Bytes(8) },
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn hierarchy_arrays_are_alias_blocked() {
        let mg = Mg::new(Class::C);
        let objs = mg.objects(0, 4);
        let u = objs.iter().find(|o| o.name == "u").unwrap();
        let r = objs.iter().find(|o| o.name == "r").unwrap();
        let v = objs.iter().find(|o| o.name == "v").unwrap();
        assert!(u.aliased && r.aliased);
        assert!(!v.aliased);
        // Fig. 13 geometry: v fits 256 MiB but not 128 MiB.
        assert!(v.size > Bytes::mib(128) && v.size <= Bytes::mib(256));
        // u and r exceed DRAM entirely.
        assert!(u.size > Bytes::mib(256));
    }

    #[test]
    fn dram_size_step_between_128_and_256() {
        // The Fig. 13 effect: at 128 MiB DRAM Unimem can place only buff;
        // at 256 MiB it can also place v — the gap to DRAM-only shrinks.
        let mg = Mg::new(Class::C);
        let cache = CacheModel::platform_a();
        let m128 = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(128));
        let m256 = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(256));
        // Paper setup: 4 ranks, one per node.
        let dram = run_workload(&mg, &m256, &cache, 4, &Policy::DramOnly).time();
        let u128 = run_workload(&mg, &m128, &cache, 4, &Policy::unimem()).time();
        let u256 = run_workload(&mg, &m256, &cache, 4, &Policy::unimem()).time();
        let gap128 = u128.secs() / dram.secs() - 1.0;
        let gap256 = u256.secs() / dram.secs() - 1.0;
        assert!(
            gap128 > gap256 + 0.01,
            "gap128={gap128:.3} gap256={gap256:.3}"
        );
    }

    #[test]
    fn unimem_still_narrows_gap_at_128() {
        // Even alias-blocked, Unimem beats NVM-only at 128 MiB (paper: 35%
        // of the gap closed).
        let mg = Mg::new(Class::C);
        let cache = CacheModel::platform_a();
        let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(128));
        let nvm = run_workload(&mg, &m, &cache, 4, &Policy::NvmOnly).time();
        let uni = run_workload(&mg, &m, &cache, 4, &Policy::unimem()).time();
        assert!(uni.secs() < nvm.secs(), "uni={uni} nvm={nvm}");
    }
}
