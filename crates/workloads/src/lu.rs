//! LU — SSOR-based LU factorization solver (NPB).
//!
//! Table 3: `u, rsd, frct, flux, a, b, c, d, buf, buf1` (99% of the
//! footprint). The RHS evaluation streams enormous volumes (several sweeps
//! over the five-component grids and four jacobian arrays), making LU the
//! most bandwidth-hungry benchmark of the suite — the paper measures 2.19×
//! slowdown already at ½ DRAM bandwidth. The SSOR lower/upper sweeps add a
//! dependent wavefront along the diagonal (latency component).

use crate::classes::{scaled_bytes, Class};
use crate::helpers::{chase, stream, stream_rw};
use unimem::exec::{ComputeSpec, StepSpec, Workload};
use unimem_hms::object::ObjectSpec;
use unimem_sim::{Bytes, VDur};

pub const U: u32 = 0;
pub const RSD: u32 = 1;
pub const FRCT: u32 = 2;
pub const FLUX: u32 = 3;
pub const JA: u32 = 4;
pub const JB: u32 = 5;
pub const JC: u32 = 6;
pub const JD: u32 = 7;
pub const BUF: u32 = 8;
pub const BUF1: u32 = 9;

const GRID5_C: u64 = 170 << 20;
const FLUX_C: u64 = 34 << 20;
const JACOBIAN_C: u64 = 200 << 20; // 25 coefficients per point, per array
const BUF_C: u64 = 16 << 20;

#[derive(Debug, Clone, Copy)]
pub struct Lu {
    pub class: Class,
}

impl Lu {
    pub fn new(class: Class) -> Lu {
        Lu { class }
    }
}

impl Workload for Lu {
    fn name(&self) -> String {
        format!("LU.{}", self.class.name())
    }

    fn objects(&self, _rank: usize, nranks: usize) -> Vec<ObjectSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let it = self.class.iterations() as f64;
        let grid5 = s(GRID5_C);
        let jac = s(JACOBIAN_C);
        let mut objs = vec![
            ObjectSpec::new("u", Bytes(grid5)).est_refs(it * 3.0 * grid5 as f64 / 8.0),
            ObjectSpec::new("rsd", Bytes(grid5)).est_refs(it * 6.0 * grid5 as f64 / 8.0),
            ObjectSpec::new("frct", Bytes(grid5)).est_refs(it * 2.0 * grid5 as f64 / 8.0),
            ObjectSpec::new("flux", Bytes(s(FLUX_C))).est_refs(it * 2.0 * s(FLUX_C) as f64 / 8.0),
        ];
        for name in ["a", "b", "c", "d"] {
            objs.push(
                ObjectSpec::new(name, Bytes(jac))
                    .partitionable(true)
                    .est_refs(it * 2.0 * jac as f64 / 8.0),
            );
        }
        objs.push(ObjectSpec::new("buf", Bytes(s(BUF_C))).est_refs(it * s(BUF_C) as f64 / 8.0));
        objs.push(ObjectSpec::new("buf1", Bytes(s(BUF_C))).est_refs(it * s(BUF_C) as f64 / 8.0));
        objs
    }

    fn script(&self, rank: usize, nranks: usize, _iter: usize) -> Vec<StepSpec> {
        let s = |b: u64| scaled_bytes(b, self.class, nranks);
        let grid5 = s(GRID5_C);
        let jac = s(JACOBIAN_C);
        let left = (rank + nranks - 1) % nranks;
        let right = (rank + 1) % nranks;
        let sweep = |label: &'static str, lo: u32, hi: u32| {
            // jacld/jacu build the block jacobians (streaming), then
            // blts/buts substitute along the wavefront (dependent chain).
            StepSpec::Compute(ComputeSpec {
                label,
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 2.5e7),
                accesses: vec![
                    stream_rw(lo, jac, 1.0, 0.2),
                    stream_rw(hi, jac, 1.0, 0.2),
                    stream_rw(RSD, grid5, 1.0, 0.5),
                    stream(U, grid5, 1.0),
                    chase(RSD, grid5, grid5 / 8 / 20),
                ],
            })
        };
        vec![
            // RHS: several full-volume streams — the bandwidth hog.
            StepSpec::Compute(ComputeSpec {
                label: "rhs",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 4e7),
                accesses: vec![
                    stream_rw(RSD, grid5, 2.0, 0.4),
                    stream(U, grid5, 2.0),
                    stream(FRCT, grid5, 1.0),
                    stream_rw(FLUX, s(FLUX_C), 3.0, 0.5),
                ],
            }),
            sweep("jacld+blts", JA, JB),
            sweep("jacu+buts", JC, JD),
            StepSpec::AllreduceSum { bytes: Bytes(40) },
            StepSpec::Compute(ComputeSpec {
                label: "update+pack",
                cpu: VDur::from_millis(grid5 as f64 / 8.0 / 6e7),
                accesses: vec![
                    stream_rw(U, grid5, 1.0, 0.5),
                    stream(RSD, grid5, 1.0),
                    stream_rw(BUF, s(BUF_C), 1.0, 0.5),
                    stream_rw(BUF1, s(BUF_C), 1.0, 0.5),
                ],
            }),
            StepSpec::Halo {
                neighbors: vec![left, right],
                bytes: Bytes(s(BUF_C) / 2),
            },
        ]
    }

    fn iterations(&self) -> usize {
        self.class.iterations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::MachineConfig;

    #[test]
    fn ten_target_objects() {
        let lu = Lu::new(Class::C);
        let names: Vec<String> = lu.objects(0, 4).iter().map(|o| o.name.clone()).collect();
        assert_eq!(
            names,
            vec!["u", "rsd", "frct", "flux", "a", "b", "c", "d", "buf", "buf1"]
        );
    }

    #[test]
    fn lu_suffers_most_from_halved_bandwidth() {
        // Fig. 2's headline: LU ≈ 2.19× at ½ bandwidth (our linear
        // roofline caps at 2×; shape check: LU > 1.5×).
        let lu = Lu::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(256));
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let dram = run_workload(&lu, &m, &cache, 1, &Policy::DramOnly).time();
        let nvm = run_workload(&lu, &m, &cache, 1, &Policy::NvmOnly).time();
        let slowdown = nvm.secs() / dram.secs();
        assert!(slowdown > 1.5, "LU at ½ bw: {slowdown:.2}");
    }

    #[test]
    fn wavefront_adds_latency_sensitivity() {
        let lu = Lu::new(Class::S);
        let cache = CacheModel::new(Bytes::kib(256));
        let dram = run_workload(
            &lu,
            &MachineConfig::nvm_lat_multiple(2.0),
            &cache,
            1,
            &Policy::DramOnly,
        )
        .time();
        let nvm = run_workload(
            &lu,
            &MachineConfig::nvm_lat_multiple(2.0),
            &cache,
            1,
            &Policy::NvmOnly,
        )
        .time();
        // Fig. 3: LU ≈ 2.14× at 2× latency; shape: clearly above 1.3×.
        assert!(nvm.secs() / dram.secs() > 1.3);
    }
}
