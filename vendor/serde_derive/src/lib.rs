//! No-op `Serialize`/`Deserialize` derives.
//!
//! The sibling `serde` stub gives every type a blanket trait impl, so the
//! derives only need to exist (and swallow `#[serde(...)]` helper
//! attributes); they emit no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
