//! Offline stub of `criterion`: a small wall-clock benchmark harness with
//! the `Criterion` / `Bencher` API surface the workspace uses. It warms
//! up, runs the configured number of timed samples, and prints
//! mean/min/max per benchmark — no statistics engine, plots, or reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.clone(),
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Passed to the closure of `bench_function`; `iter*` runs the routine.
pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample = enough iterations to fill
    /// `measurement_time / sample_size`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate. Use the MINIMUM observed
        // cost: one preempted warm-up iteration must not collapse the
        // iteration count and leave samples measuring timer granularity.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut per_iter = Duration::MAX;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            per_iter = per_iter.min(t0.elapsed().max(Duration::from_nanos(1)));
            if Instant::now() >= warm_until {
                break;
            }
        }
        let budget = self.config.measurement_time / self.config.sample_size as u32;
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }

    /// Batched variant: `setup` output feeds `routine` by value and is not
    /// included in the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_until {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{id:<44} time: [{} {} {}]",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
