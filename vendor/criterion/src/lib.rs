//! Offline `criterion`: a real (if small) wall-clock benchmark harness
//! with the `Criterion` / `Bencher` API surface the workspace uses.
//!
//! Unlike the earlier no-op stub, this harness actually measures:
//!
//! * **warmup** for the configured `warm_up_time`, using the *minimum*
//!   observed cost to size iteration batches (one preempted warm-up
//!   iteration must not collapse the count and leave samples measuring
//!   timer granularity);
//! * **fixed iteration batches** — every sample times the same number
//!   of iterations, so samples are comparable;
//! * **monotonic timing** via [`std::time::Instant`] behind a [`Clock`]
//!   abstraction — [`Criterion::with_virtual_clock`] substitutes a
//!   deterministic virtual clock so the harness's analysis and output
//!   paths can be tested bit-for-bit;
//! * **outlier-robust statistics** in [`stats`]: per-sample times are
//!   summarized by median and MAD (median absolute deviation), with
//!   outliers rejected by the modified z-score rule before the summary;
//! * **deterministic JSON output**: [`Criterion::to_json`] serializes
//!   results in insertion order with shortest-round-trip floats, and
//!   the `criterion_group!` runner writes it to the path named by the
//!   `UNIMEM_CRITERION_JSON` environment variable when set (schema
//!   `unimem-criterion/v1`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod stats {
    //! Outlier-robust summary statistics over per-sample times.
    //!
    //! Wall-clock samples on a shared host are contaminated by
    //! preemption spikes; mean/min/max summaries swing with them. The
    //! kernel here is the standard robust pipeline: **median** for
    //! location, **MAD** (median absolute deviation) for scale, and the
    //! **modified z-score** rule (Iglewicz & Hoaglin) to reject samples
    //! more than 3.5 robust deviations from the median before
    //! summarizing.

    /// Modified z-score threshold beyond which a sample is an outlier.
    pub const OUTLIER_Z: f64 = 3.5;
    /// Consistency constant relating MAD to the standard deviation of a
    /// normal distribution (0.6745 ≈ Φ⁻¹(0.75)).
    pub const MAD_SCALE: f64 = 0.6745;

    /// Median of `xs`. Panics on an empty slice.
    pub fn median(xs: &[f64]) -> f64 {
        assert!(!xs.is_empty(), "median of empty sample set");
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }

    /// Median absolute deviation of `xs` around its median. Zero for
    /// single-sample and all-equal inputs.
    pub fn mad(xs: &[f64]) -> f64 {
        let m = median(xs);
        let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
        median(&dev)
    }

    /// The samples of `xs` that survive modified z-score rejection:
    /// keep `x` iff `MAD_SCALE * |x - median| / MAD <= OUTLIER_Z`.
    ///
    /// Degenerate scale (`MAD == 0`, e.g. all-equal or single-sample
    /// inputs) keeps exactly the samples equal to the median — any
    /// deviation from a zero-spread bulk is an outlier by construction.
    pub fn reject_outliers(xs: &[f64]) -> Vec<f64> {
        let m = median(xs);
        let s = mad(xs);
        xs.iter()
            .copied()
            .filter(|x| {
                if s == 0.0 {
                    *x == m
                } else {
                    MAD_SCALE * (x - m).abs() / s <= OUTLIER_Z
                }
            })
            .collect()
    }

    /// Robust summary of one benchmark's per-iteration sample times
    /// (nanoseconds).
    #[derive(Debug, Clone, PartialEq)]
    pub struct RobustSummary {
        /// Samples collected.
        pub n_samples: usize,
        /// Samples kept after outlier rejection.
        pub n_kept: usize,
        /// Median of the kept samples (ns).
        pub median_ns: f64,
        /// MAD of the *full* sample set (ns) — the scale that drove
        /// rejection, reported so regressions in spread are visible.
        pub mad_ns: f64,
        /// Minimum / maximum / mean of the kept samples (ns).
        pub min_ns: f64,
        pub max_ns: f64,
        pub mean_ns: f64,
    }

    impl RobustSummary {
        /// Summarize `samples_ns` (per-iteration times in nanoseconds).
        /// Panics on an empty slice.
        pub fn from_ns(samples_ns: &[f64]) -> RobustSummary {
            let kept = reject_outliers(samples_ns);
            // The median always survives rejection, so `kept` is
            // non-empty whenever `samples_ns` is.
            let min = kept.iter().copied().fold(f64::INFINITY, f64::min);
            let max = kept.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = kept.iter().sum::<f64>() / kept.len() as f64;
            RobustSummary {
                n_samples: samples_ns.len(),
                n_kept: kept.len(),
                median_ns: median(&kept),
                mad_ns: mad(samples_ns),
                min_ns: min,
                max_ns: max,
                mean_ns: mean,
            }
        }
    }
}

/// Time source for the harness: the real monotonic clock, or a
/// deterministic virtual clock that advances a fixed step per reading
/// (every reading observably distinct, no host time involved) — the
/// hook that makes the measurement/analysis/serialization pipeline
/// testable bit-for-bit.
#[derive(Debug, Clone)]
pub enum Clock {
    /// `std::time::Instant` relative to an anchor taken at creation.
    Monotonic { anchor: Instant },
    /// Virtual time: advances `step_ns` on every reading.
    Virtual { step_ns: u64, now_ns: u64 },
}

impl Clock {
    fn monotonic() -> Clock {
        Clock::Monotonic {
            anchor: Instant::now(),
        }
    }

    /// Current reading in nanoseconds. Monotonic by construction in
    /// both variants.
    pub fn now_ns(&mut self) -> u64 {
        match self {
            Clock::Monotonic { anchor } => anchor.elapsed().as_nanos() as u64,
            Clock::Virtual { step_ns, now_ns } => {
                *now_ns += *step_ns;
                *now_ns
            }
        }
    }
}

/// One benchmark's recorded result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub id: String,
    /// Iterations per timed batch (1 for `iter_batched`).
    pub iters_per_sample: u64,
    pub summary: stats::RobustSummary,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    clock: Clock,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            clock: Clock::monotonic(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Replace the monotonic clock with a deterministic virtual clock
    /// advancing `step` per reading. Two runs of the same benchmarks
    /// under the same virtual clock produce byte-identical
    /// [`Criterion::to_json`] output.
    pub fn with_virtual_clock(mut self, step: Duration) -> Criterion {
        let step_ns = step.as_nanos() as u64;
        assert!(step_ns > 0, "virtual clock step must be non-zero");
        self.clock = Clock::Virtual { step_ns, now_ns: 0 };
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            clock: self.clock.clone(),
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        // Advance the virtual clock past the bench so successive
        // benchmarks under a pinned clock stay deterministic.
        self.clock = b.clock.clone();
        if b.samples_ns.is_empty() {
            println!("{id:<44} (no samples)");
            return self;
        }
        let summary = stats::RobustSummary::from_ns(&b.samples_ns);
        println!(
            "{id:<44} time: [{} {} {}] ({} of {} samples kept)",
            fmt_ns(summary.min_ns),
            fmt_ns(summary.median_ns),
            fmt_ns(summary.max_ns),
            summary.n_kept,
            summary.n_samples,
        );
        self.results.push(BenchResult {
            id: id.to_string(),
            iters_per_sample: b.iters_per_sample,
            summary,
        });
        self
    }

    /// Results recorded so far, in bench order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Deterministic JSON form of every recorded result (schema
    /// `unimem-criterion/v1`): insertion-ordered keys, shortest
    /// round-trip floats — identical results serialize to identical
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"unimem-criterion/v1\",\n  \"benches\": [");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = &r.summary;
            out.push_str(&format!(
                "\n    {{\"id\": {:?}, \"iters_per_sample\": {}, \"samples\": {}, \"kept\": {}, \
                 \"median_ns\": {}, \"mad_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"mean_ns\": {}}}",
                r.id,
                r.iters_per_sample,
                s.n_samples,
                s.n_kept,
                fmt_f64(s.median_ns),
                fmt_f64(s.mad_ns),
                fmt_f64(s.min_ns),
                fmt_f64(s.max_ns),
                fmt_f64(s.mean_ns),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write [`Criterion::to_json`] to the path in the
    /// `UNIMEM_CRITERION_JSON` environment variable, when set. Called
    /// by the `criterion_group!` runner after its targets finish.
    pub fn write_json_if_env(&self) {
        if let Ok(path) = std::env::var("UNIMEM_CRITERION_JSON") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, self.to_json()) {
                    eprintln!("criterion: cannot write {path}: {e}");
                }
            }
        }
    }
}

/// Passed to the closure of `bench_function`; `iter*` runs the routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    clock: Clock,
    /// Per-iteration times, one entry per sample (ns).
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    /// Time `routine` repeatedly: warm up, then run `sample_size`
    /// batches of a fixed iteration count sized so one batch fills
    /// `measurement_time / sample_size`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate. Use the MINIMUM
        // observed cost: one preempted warm-up iteration must not
        // collapse the iteration count and leave samples measuring
        // timer granularity.
        let warm_until = self.clock.now_ns() + self.warm_up_time.as_nanos() as u64;
        let mut per_iter_ns = u64::MAX;
        loop {
            let t0 = self.clock.now_ns();
            black_box(routine());
            let t1 = self.clock.now_ns();
            per_iter_ns = per_iter_ns.min((t1 - t0).max(1));
            if t1 >= warm_until {
                break;
            }
        }
        let budget_ns = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;
        let iters = (budget_ns / per_iter_ns.max(1)).clamp(1, 1_000_000);
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = self.clock.now_ns();
            for _ in 0..iters {
                black_box(routine());
            }
            let t1 = self.clock.now_ns();
            self.samples_ns.push((t1 - t0) as f64 / iters as f64);
        }
    }

    /// Batched variant: `setup` output feeds `routine` by value and is
    /// not included in the timing. One routine call per sample.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = self.clock.now_ns() + self.warm_up_time.as_nanos() as u64;
        loop {
            let input = setup();
            black_box(routine(input));
            if self.clock.now_ns() >= warm_until {
                break;
            }
        }
        self.iters_per_sample = 1;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = self.clock.now_ns();
            black_box(routine(input));
            let t1 = self.clock.now_ns();
            self.samples_ns.push((t1 - t0) as f64);
        }
    }
}

/// Shortest-round-trip float formatting (`1.5`, not `1.5000000`);
/// integral values keep a trailing `.0` so the field stays a float.
fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.is_finite() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
            criterion.write_json_if_env();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::stats::*;
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
        let r = &c.results()[0];
        assert_eq!(r.summary.n_samples, 3);
        assert!(r.summary.n_kept >= 1);
        assert!(r.summary.median_ns > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        assert_eq!(c.results()[0].iters_per_sample, 1);
    }

    #[test]
    fn median_handles_odd_even_and_single() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_rejects_empty_input() {
        median(&[]);
    }

    #[test]
    fn mad_known_fixture() {
        // Median 3, |x - 3| = [2, 1, 0, 1, 6], MAD = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 9.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(mad(&[7.0]), 0.0);
    }

    #[test]
    fn outlier_rejection_drops_the_spike_and_only_the_spike() {
        let xs = [10.0, 11.0, 10.5, 9.5, 10.2, 500.0];
        let kept = reject_outliers(&xs);
        assert_eq!(kept, vec![10.0, 11.0, 10.5, 9.5, 10.2]);
    }

    #[test]
    fn all_equal_samples_all_survive() {
        let xs = [4.0; 8];
        assert_eq!(reject_outliers(&xs).len(), 8);
        let s = RobustSummary::from_ns(&xs);
        assert_eq!(s.n_kept, 8);
        assert_eq!(s.median_ns, 4.0);
        assert_eq!(s.mad_ns, 0.0);
        assert_eq!(s.min_ns, 4.0);
        assert_eq!(s.max_ns, 4.0);
        assert_eq!(s.mean_ns, 4.0);
    }

    #[test]
    fn single_sample_summary_is_itself() {
        let s = RobustSummary::from_ns(&[42.0]);
        assert_eq!(s.n_samples, 1);
        assert_eq!(s.n_kept, 1);
        assert_eq!(s.median_ns, 42.0);
        assert_eq!(s.mad_ns, 0.0);
    }

    #[test]
    fn zero_mad_keeps_only_the_bulk() {
        // Spread is zero except one sample: the deviant is an outlier.
        let xs = [2.0, 2.0, 2.0, 2.0, 3.0];
        let kept = reject_outliers(&xs);
        assert_eq!(kept, vec![2.0, 2.0, 2.0, 2.0]);
    }

    fn virtual_run() -> String {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_micros(50))
            .warm_up_time(Duration::from_micros(10))
            .with_virtual_clock(Duration::from_micros(1));
        c.bench_function("pinned_a", |b| b.iter(|| black_box(2 + 2)));
        c.bench_function("pinned_b", |b| {
            b.iter_batched(|| 7u64, |v| v * v, BatchSize::SmallInput)
        });
        c.to_json()
    }

    #[test]
    fn pinned_virtual_clock_emits_identical_json() {
        let a = virtual_run();
        let b = virtual_run();
        assert_eq!(a, b, "virtual-clock runs must serialize identically");
        assert!(a.contains("\"schema\": \"unimem-criterion/v1\""));
        assert!(a.contains("\"id\": \"pinned_a\""));
        assert!(a.contains("median_ns"));
    }

    #[test]
    fn virtual_clock_advances_fixed_steps() {
        let mut clk = Clock::Virtual {
            step_ns: 10,
            now_ns: 0,
        };
        assert_eq!(clk.now_ns(), 10);
        assert_eq!(clk.now_ns(), 20);
    }
}
