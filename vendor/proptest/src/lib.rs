//! Offline stub of `proptest`: the `proptest!` macro, uniform range /
//! tuple / collection strategies, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic RNG
//! seeded by the test name, so failures reproduce run-to-run; there is no
//! shrinking — the failing input is printed verbatim instead.

pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator for case inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`.
        #[inline]
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// Drive `f` over `config.cases` sampled inputs. On panic, report the
    /// input that failed (no shrinking) and re-raise.
    pub fn run_cases<S, F>(name: &str, config: &Config, strat: &S, mut f: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        let mut rng = TestRng::from_name(name);
        for case in 0..config.cases {
            let vals = strat.sample(&mut rng);
            let repr = format!("{vals:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(vals)));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest: {name} failed at case {case}/{} with input: {repr}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of generated values. No shrinking in this stub.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Upstream `Strategy::prop_map`: derive a strategy by mapping
        /// sampled values (stub: sample-then-map, no shrinking through
        /// the mapping).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            Range {
                start: self.start as f64,
                end: self.end as f64,
            }
            .sample(rng) as f32
        }
    }

    /// A constant strategy: always yields a clone of the value
    /// (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    /// Divergence from proptest: all arms must be the *same* strategy
    /// type (upstream boxes heterogeneous arms) and weights are not
    /// supported — enough for unioning ranges of one numeric type.
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(arms: Vec<S>) -> Union<S> {
            assert!(!arms.is_empty(), "empty union strategy");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn generate(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Divergence from proptest: restricted to uniform [0, 1) — no
    // negatives, large magnitudes, or non-finite values. Widen this (or
    // use an explicit range strategy) before relying on whole-domain f64.
    impl Arbitrary for f64 {
        fn generate(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Uniform choice between same-typed alternative strategies (see
/// [`strategy::Union`] for the divergences from upstream).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(expr)]` followed by `#[test]` functions whose
/// arguments are drawn from strategies (`arg in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategies,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 1u64..100, y in -5.0f64..5.0) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<bool>(), 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0u32..10, 0u32..10)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_samples_every_arm(x in prop_oneof![0u64..10, 100u64..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }

        #[test]
        fn just_is_constant(x in Just(7u32)) {
            prop_assert_eq!(x, 7);
        }
    }

    #[test]
    fn oneof_covers_all_arms_over_many_samples() {
        use crate::strategy::{Strategy, Union};
        let mut rng = crate::test_runner::TestRng::from_name("arms");
        let u = Union::new(vec![0u64..1, 10u64..11, 20u64..21]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            match u.sample(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("out-of-arm sample {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
