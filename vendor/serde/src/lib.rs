//! Offline stub of the `serde` façade.
//!
//! Provides the `Serialize`/`Deserialize` trait names with blanket impls
//! (every type trivially satisfies both) and re-exports the no-op derive
//! macros. Sufficient for code that derives the traits and uses them as
//! bounds; there is no actual serialization machinery behind it.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization alias, matching serde's `de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
