//! Offline stub of `crossbeam`: the two modules the workspace uses.
//!
//! * [`channel`] — a blocking MPMC channel (`Mutex<VecDeque>` + `Condvar`)
//!   with upstream disconnect semantics: `send` fails once every receiver
//!   is gone, `recv` fails once the queue is empty and every sender is
//!   gone. Used where a consumer must *park* (the HMS helper thread).
//! * [`queue`] — a lock-free bounded MPMC [`queue::ArrayQueue`] (Vyukov
//!   sequence-stamped ring buffer), matching upstream
//!   `crossbeam::queue::ArrayQueue`'s API. Used by the `unimem_sim`
//!   worker pool, where producers enqueue everything up front and workers
//!   spin-pop until empty — no parking needed, no lock wanted.

pub mod queue {
    //! Lock-free bounded MPMC queue.
    //!
    //! The classic Vyukov design: a power-of-anything ring of slots, each
    //! carrying an atomic *sequence stamp*. A slot whose stamp equals the
    //! current tail ticket is free to write; one whose stamp equals
    //! `head + 1` holds a value ready to pop. Producers and consumers
    //! claim tickets with a CAS on `tail`/`head` and then touch only
    //! their own slot, so contention is a single CAS — there is no lock
    //! to convoy behind and a preempted thread only delays the slot it
    //! already claimed, never the whole queue.

    use std::cell::UnsafeCell;
    use std::fmt;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        /// Ticket parity: `index` when empty/writable, `index + 1` when
        /// full/readable, advancing by `capacity` per lap.
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        buffer: Box<[Slot<T>]>,
    }

    // Values move through the queue across threads; the queue itself is
    // shared by reference from all of them.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// An empty queue holding at most `cap` items.
        ///
        /// # Panics
        /// Panics if `cap` is zero.
        pub fn new(cap: usize) -> ArrayQueue<T> {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            ArrayQueue {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                buffer: (0..cap)
                    .map(|i| Slot {
                        stamp: AtomicUsize::new(i),
                        value: UnsafeCell::new(MaybeUninit::uninit()),
                    })
                    .collect(),
            }
        }

        /// Maximum number of items the queue holds.
        pub fn capacity(&self) -> usize {
            self.buffer.len()
        }

        /// Attempt to enqueue, handing `value` back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let cap = self.buffer.len();
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[tail % cap];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == tail {
                    // The slot is free at this ticket: claim the ticket,
                    // then we own the slot exclusively.
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            // Publish: stamp `tail + 1` marks "readable".
                            slot.stamp.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if stamp < tail {
                    // A full lap behind: the consumer for the previous
                    // lap hasn't freed the slot, so the queue is full —
                    // unless tail moved while we looked.
                    let now = self.tail.load(Ordering::Relaxed);
                    if now == tail {
                        return Err(value);
                    }
                    tail = now;
                } else {
                    // Another producer claimed this ticket; reload.
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempt to dequeue; `None` when the queue is empty.
        pub fn pop(&self) -> Option<T> {
            let cap = self.buffer.len();
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[head % cap];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == head + 1 {
                    // The slot holds the value for this ticket: claim it.
                    match self.head.compare_exchange_weak(
                        head,
                        head + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            // Free the slot for the producer one lap out.
                            slot.stamp.store(head + cap, Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if stamp <= head {
                    // The producer for this ticket hasn't published yet:
                    // the queue is empty — unless head moved meanwhile.
                    let now = self.head.load(Ordering::Relaxed);
                    if now == head {
                        return None;
                    }
                    head = now;
                } else {
                    // Another consumer claimed this ticket; reload.
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Whether the queue is empty at the instant of the call.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Number of items at the instant of the call (racy under
        /// concurrent use, exact when quiescent).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.saturating_sub(head)
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            // &mut self: no concurrent access; drain whatever remains.
            while self.pop().is_some() {}
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("capacity", &self.capacity())
                .field("len", &self.len())
                .finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_capacity() {
            let q = ArrayQueue::new(4);
            assert!(q.is_empty());
            for i in 0..4 {
                q.push(i).unwrap();
            }
            assert_eq!(q.len(), 4);
            assert_eq!(q.push(99), Err(99), "full queue must reject");
            for i in 0..4 {
                assert_eq!(q.pop(), Some(i));
            }
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn wraps_around_many_laps() {
            let q = ArrayQueue::new(3);
            for lap in 0u64..100 {
                for i in 0..3 {
                    q.push(lap * 3 + i).unwrap();
                }
                for i in 0..3 {
                    assert_eq!(q.pop(), Some(lap * 3 + i));
                }
            }
            assert!(q.is_empty());
        }

        #[test]
        fn drop_releases_unpopped_items() {
            let item = std::sync::Arc::new(());
            let q = ArrayQueue::new(8);
            for _ in 0..5 {
                q.push(std::sync::Arc::clone(&item)).unwrap();
            }
            drop(q);
            assert_eq!(std::sync::Arc::strong_count(&item), 1);
        }

        #[test]
        fn concurrent_producers_and_consumers_lose_nothing() {
            const PER: u64 = 2000;
            const PRODUCERS: u64 = 3;
            let q = ArrayQueue::new(16);
            let done = AtomicUsize::new(0);
            let sums: Vec<u64> = std::thread::scope(|s| {
                for p in 0..PRODUCERS {
                    let q = &q;
                    let done = &done;
                    s.spawn(move || {
                        for i in 0..PER {
                            let mut v = p * PER + i;
                            loop {
                                match q.push(v) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        v = back;
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                let consumers: Vec<_> = (0..3)
                    .map(|_| {
                        let q = &q;
                        let done = &done;
                        s.spawn(move || {
                            let mut sum = 0u64;
                            loop {
                                match q.pop() {
                                    Some(v) => sum += v,
                                    None => {
                                        if done.load(Ordering::SeqCst) == PRODUCERS as usize
                                            && q.is_empty()
                                        {
                                            break;
                                        }
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            sum
                        })
                    })
                    .collect();
                consumers.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let total: u64 = sums.iter().sum();
            let n = PRODUCERS * PER;
            assert_eq!(total, n * (n - 1) / 2, "items lost or duplicated");
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signaled on every push and on the last sender's drop.
        items: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A consumer panicking while holding the lock leaves the queue
            // itself consistent (push/pop are atomic under the guard), so
            // poisoning carries no information here.
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Receivers parked in recv() must observe the disconnect.
                drop(st);
                self.shared.items.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring T: Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            items: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.items.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item is available (any clone may win the race for
        /// it) or every sender has disconnected and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .items
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received items; ends on disconnect. The
        /// natural worker-pool consumption loop (`for job in rx.iter()`).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(1).unwrap();
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn mpmc_consumers_share_one_queue_without_loss() {
            const N: u64 = 1000;
            const WORKERS: usize = 4;
            let (tx, rx) = unbounded();
            for i in 0..N {
                tx.send(i).unwrap();
            }
            drop(tx);
            let sums: Vec<(u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..WORKERS)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0;
                            let mut count = 0;
                            for v in rx.iter() {
                                sum += v;
                                count += 1;
                            }
                            (sum, count)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let total: u64 = sums.iter().map(|(s, _)| s).sum();
            let count: u64 = sums.iter().map(|(_, c)| c).sum();
            assert_eq!(count, N, "every item consumed exactly once");
            assert_eq!(total, N * (N - 1) / 2);
        }

        #[test]
        fn blocked_receivers_wake_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.recv())
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            for h in handles {
                assert_eq!(h.join().unwrap(), Err(RecvError));
            }
        }
    }
}
