//! Offline stub of `crossbeam`: the `channel` module the workspace uses,
//! implemented as a real MPMC queue (`Mutex<VecDeque>` + `Condvar`) rather
//! than a wrapper over `std::sync::mpsc`. Any number of `Sender` and
//! `Receiver` clones share one FIFO queue; disconnection semantics match
//! upstream crossbeam: `send` fails once every receiver is gone, `recv`
//! fails once the queue is empty and every sender is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signaled on every push and on the last sender's drop.
        items: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A consumer panicking while holding the lock leaves the queue
            // itself consistent (push/pop are atomic under the guard), so
            // poisoning carries no information here.
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Receivers parked in recv() must observe the disconnect.
                drop(st);
                self.shared.items.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring T: Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            items: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.items.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item is available (any clone may win the race for
        /// it) or every sender has disconnected and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .items
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received items; ends on disconnect. The
        /// natural worker-pool consumption loop (`for job in rx.iter()`).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(1).unwrap();
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn mpmc_consumers_share_one_queue_without_loss() {
            const N: u64 = 1000;
            const WORKERS: usize = 4;
            let (tx, rx) = unbounded();
            for i in 0..N {
                tx.send(i).unwrap();
            }
            drop(tx);
            let sums: Vec<(u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..WORKERS)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0;
                            let mut count = 0;
                            for v in rx.iter() {
                                sum += v;
                                count += 1;
                            }
                            (sum, count)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let total: u64 = sums.iter().map(|(s, _)| s).sum();
            let count: u64 = sums.iter().map(|(_, c)| c).sum();
            assert_eq!(count, N, "every item consumed exactly once");
            assert_eq!(total, N * (N - 1) / 2);
        }

        #[test]
        fn blocked_receivers_wake_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.recv())
                })
                .collect();
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            for h in handles {
                assert_eq!(h.join().unwrap(), Err(RecvError));
            }
        }
    }
}
