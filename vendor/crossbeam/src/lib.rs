//! Offline stub of `crossbeam`: the `channel` module the workspace uses,
//! implemented over `std::sync::mpsc`. Receivers are wrapped in a mutex so
//! they are `Sync`+`Clone` like crossbeam's (all clones drain one queue).

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex, PoisonError};

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam: Debug without requiring T: Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking poll. Divergence from crossbeam: if another clone of
        /// this receiver is parked inside `recv()` (holding the queue
        /// mutex), this returns `Empty` instead of waiting — spuriously
        /// empty, but never blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let guard = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => return Err(TryRecvError::Empty),
            };
            guard.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
