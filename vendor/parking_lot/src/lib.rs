//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Mirrors the parking_lot API shape the workspace uses: `lock()`,
//! `read()`, `write()` return guards directly (no poison `Result`), and
//! `Condvar::wait` takes `&mut MutexGuard`. Poisoned std locks are
//! recovered transparently, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
