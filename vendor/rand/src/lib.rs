//! Offline stub of `rand` 0.8: the `Rng`/`RngCore`/`SeedableRng` trait
//! surface plus `rngs::SmallRng`, implemented as xoshiro256++ seeded via
//! SplitMix64 — the same generator family real `SmallRng` uses on 64-bit
//! targets, so statistical quality is adequate for the simulator's
//! distribution tests.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce from raw bits.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as the element of a `gen_range` range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire multiply-shift; bias is < 2^-64 per draw.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let x = f64::sample(rng);
        let v = lo + x * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Range argument to `Rng::gen_range` (half-open ranges only).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the generator real `SmallRng` wraps on 64-bit.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
