//! Vendored Fowler–Noll–Vo hashing (FNV-1a), 64- and 128-bit.
//!
//! The build container has no route to a crates registry, so this is a
//! local, self-contained implementation (upstream `fnv` provides only the
//! 64-bit `std::hash::Hasher` form; the 128-bit variant here follows the
//! same published FNV-1a parameters). Two properties matter to the
//! workspace and are what the unit tests pin:
//!
//! * **Determinism across hosts and runs** — the digest is a pure
//!   function of the input bytes: no per-process seed (unlike
//!   `std::collections::hash_map::RandomState`), no host endianness
//!   dependence, no allocation. The sweep's content-addressed cell cache
//!   (`unimem_bench::sweep::cache`) derives on-disk file names from these
//!   digests, so a digest that varied per process would orphan every
//!   cached entry.
//! * **Reference-exact constants** — offset basis and prime are the
//!   published FNV parameters, so digests can be checked against any
//!   independent FNV-1a implementation (the `known_vectors` test does).
//!
//! FNV-1a is *not* cryptographic: collisions can be constructed. Cache
//! consumers guard by storing the full canonical key next to the payload
//! and comparing it on load; the hash only names the file.

/// Incremental 64-bit FNV-1a hasher.
///
/// ```
/// use fnv::Fnv64;
/// let h = Fnv64::new().update(b"hello ").update(b"world").finish();
/// assert_eq!(h, Fnv64::new().update(b"hello world").finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV64_OFFSET)
    }

    /// Fold `bytes` into the state, returning the hasher for chaining.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Fnv64 {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
        self
    }

    /// The digest of everything folded in so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot 64-bit FNV-1a digest of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    Fnv64::new().update(bytes).finish()
}

/// FNV-1a 128-bit offset basis (0x6c62272e07bb014262b821756295c58d).
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime (2^88 + 2^8 + 0x3b).
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher — the content-addressing digest.
/// 128 bits keep accidental collisions out of reach for any realistic
/// cache population (birthday bound ~2^64 entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128(u128);

impl Fnv128 {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV128_OFFSET)
    }

    /// Fold `bytes` into the state, returning the hasher for chaining.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Fnv128 {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// The digest of everything folded in so far.
    pub fn finish(self) -> u128 {
        self.0
    }

    /// The digest as 32 lower-case hex characters — the cache's on-disk
    /// file-name form (fixed width, no separators, shell-safe).
    pub fn finish_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

/// One-shot 128-bit FNV-1a digest of `bytes`.
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    Fnv128::new().update(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a test vectors (from the FNV reference material):
    /// digests must match any independent implementation byte for byte.
    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
        // 128-bit single-byte fold, computable by hand:
        // (basis ^ 'a') * prime mod 2^128.
        assert_eq!(
            fnv1a_128(b"a"),
            (FNV128_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV128_PRIME)
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let parts = Fnv64::new().update(b"un").update(b"im").update(b"em");
        assert_eq!(parts.finish(), fnv1a_64(b"unimem"));
        let parts = Fnv128::new().update(b"sweep").update(b"-cache");
        assert_eq!(parts.finish(), fnv1a_128(b"sweep-cache"));
    }

    #[test]
    fn hex_form_is_fixed_width() {
        let h = Fnv128::new().update(b"x").finish_hex();
        assert_eq!(h.len(), 32);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
        // Deterministic: same input, same name, every process.
        assert_eq!(h, Fnv128::new().update(b"x").finish_hex());
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Not a collision-resistance claim, just a sanity probe over the
        // kinds of near-miss keys the cache produces.
        let keys = [
            "schema=v5|salt=|CG|unimem|bw-half|r4x1",
            "schema=v5|salt=|CG|unimem|bw-half|r4x2",
            "schema=v5|salt=|CG|unimem|lat-4x|r4x1",
            "schema=v5|salt=s|CG|unimem|bw-half|r4x1",
        ];
        let mut seen = std::collections::BTreeSet::new();
        for k in keys {
            assert!(seen.insert(fnv1a_128(k.as_bytes())), "collision on {k}");
        }
    }
}
